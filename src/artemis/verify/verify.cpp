// The harness driver: named paper kernels + a seeded block of random
// programs, each pushed through the enabled property families; failures
// are greedily minimized and written to the reproducer corpus.

#include "artemis/verify/verify.hpp"

#include <algorithm>

#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "artemis/verify/corpus.hpp"
#include "artemis/verify/shrink.hpp"

namespace artemis::verify {

namespace {

/// Fixed kernels every run checks before the random sweep: the paper's
/// Jacobi (spatial + pragma decoration), its iterative ping-pong variant
/// (exercises iterate/swap and time tiling), and a two-stage DAG with
/// mixed array dimensionality and #assign clauses.
struct NamedProgram {
  const char* name;
  const char* dsl;
};

const NamedProgram kNamedPrograms[] = {
    {"jacobi", R"(
parameter L=16, M=16, N=16;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
)"},
    {"jacobi-iterative", R"(
parameter L=12, M=12, N=12;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
iterate 4 {
  jacobi (out, in, h2inv, a, b);
  swap (out, in);
}
copyout in;
)"},
    {"blur-dag", R"(
parameter L=10, M=10, N=10;
iterator k, j, i;
double u[L,M,N], tmp[L,M,N], out[L,M,N], w[N], alpha;
copyin u, w, alpha;
#pragma block (16,8)
stencil blurx (T, U, W) {
  #assign shmem (U), gmem (W)
  T[k][j][i] = W[i] * (U[k][j][i-1] + U[k][j][i] + U[k][j][i+1]);
}
stencil blury (O, T, alpha) {
  O[k][j][i] = alpha * (T[k][j-1][i] + T[k][j][i] + T[k][j+1][i]);
}
blurx (tmp, u, w);
blury (out, tmp, alpha);
copyout out;
)"},
};

/// The expensive families are sampled across the seed block; round-trip,
/// transform and engine equivalence run on every program.
bool sampled(Property p, int index) {
  switch (p) {
    case Property::TunerDeterminism: return index % 5 == 0;
    case Property::VariantEquivalence: return index % 2 == 0;
    default: return true;
  }
}

/// Check one program against the enabled families, shrinking and
/// recording failures. Returns false when the failure budget is spent.
bool check_one(const ir::Program& prog, std::uint64_t seed, int sample_index,
               const std::vector<Property>& props, const VerifyOptions& opts,
               VerifyReport& rep) {
  for (const Property p : props) {
    if (sample_index >= 0 && !sampled(p, sample_index)) continue;
    ++rep.checks_run;
    const CheckResult r = check_property(p, prog, seed);
    if (r.ok) continue;

    Failure f;
    f.property = p;
    f.seed = seed;
    f.detail = r.detail;
    ir::Program minimized = prog;
    if (opts.shrink) {
      ShrinkOptions so;
      so.max_checks = opts.max_shrink_checks;
      ShrinkStats stats;
      minimized = shrink_program(
          prog,
          [p, seed](const ir::Program& cand) {
            return !check_property(p, cand, seed).ok;
          },
          so, &stats);
      f.shrink_rounds = stats.rounds;
    }
    f.program_dsl = dsl::print_program(minimized);
    if (!opts.corpus_dir.empty()) {
      f.corpus_path = write_reproducer(opts.corpus_dir, p, seed, r.detail,
                                       minimized);
    }
    rep.failures.push_back(std::move(f));
    if (opts.max_failures > 0 &&
        static_cast<int>(rep.failures.size()) >= opts.max_failures) {
      return false;
    }
  }
  ++rep.programs_checked;
  return true;
}

}  // namespace

std::string VerifyReport::summary() const {
  std::string out = str_cat("verify: ", programs_checked, " program(s), ",
                            checks_run, " property check(s), ",
                            failures.size(), " failure(s)\n");
  for (const auto& f : failures) {
    out += str_cat("  FAIL [", property_name(f.property), "] seed=", f.seed,
                   ": ", f.detail, "\n");
    if (!f.corpus_path.empty()) {
      out += str_cat("    reproducer: ", f.corpus_path, " (",
                     f.shrink_rounds, " shrink step(s))\n");
    }
  }
  return out;
}

VerifyReport run_verify(const VerifyOptions& opts) {
  VerifyReport rep;
  const std::vector<Property> props =
      opts.properties.empty() ? all_properties() : opts.properties;

  for (const auto& np : kNamedPrograms) {
    const ir::Program prog = dsl::parse(np.dsl);
    if (!check_one(prog, opts.base_seed, /*sample_index=*/-1, props, opts,
                   rep)) {
      return rep;
    }
  }

  for (int i = 0; i < opts.seed_count; ++i) {
    const std::uint64_t seed = opts.base_seed + static_cast<std::uint64_t>(i);
    Rng rng(seed);
    stencils::RandomStencilOptions gopts;
    gopts.dims = 1 + i % 3;
    gopts.max_order = 1 + static_cast<int>(rng.uniform_int(0, 2));
    gopts.max_stages = 1 + static_cast<int>(rng.uniform_int(0, 2));
    // Odd and small extents stress boundary guards, streaming chunk
    // remainders and unroll epilogues; large ones stress tiling.
    const std::int64_t kExtents[] = {5, 7, 9, 12, 14, 17};
    gopts.extent = kExtents[rng.uniform_int(0, 5)];
    gopts.allow_calls = rng.coin(0.5);
    gopts.decorate = rng.coin(0.5);
    gopts.allow_iterate = true;
    const ir::Program prog = stencils::random_program(rng, gopts);
    if (!check_one(prog, seed, i, props, opts, rep)) return rep;
  }
  return rep;
}

VerifyReport verify_program(const ir::Program& prog,
                            const VerifyOptions& opts) {
  VerifyReport rep;
  const std::vector<Property> props =
      opts.properties.empty() ? all_properties() : opts.properties;
  check_one(prog, opts.base_seed, /*sample_index=*/-1, props, opts, rep);
  return rep;
}

}  // namespace artemis::verify
