#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "artemis/common/check.hpp"
#include "artemis/common/grid.hpp"
#include "artemis/common/json.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"

namespace artemis {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(ARTEMIS_CHECK(false), Error);
  try {
    ARTEMIS_CHECK_MSG(1 == 2, "one is " << 1);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is 1"), std::string::npos);
  }
}

TEST(Grid, FillAndIndexing) {
  Grid3D g({2, 3, 4}, 1.5);
  EXPECT_EQ(g.size(), 24);
  EXPECT_DOUBLE_EQ(g.at(1, 2, 3), 1.5);
  g.at(0, 0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(g.raw()[0], 7.0);
  EXPECT_TRUE(g.in_bounds(1, 2, 3));
  EXPECT_FALSE(g.in_bounds(2, 0, 0));
  EXPECT_FALSE(g.in_bounds(0, -1, 0));
}

TEST(Grid, OutOfBoundsAccessThrows) {
  Grid3D g({2, 2, 2});
  EXPECT_THROW(g.at(2, 0, 0), Error);
  EXPECT_THROW(g.at(0, 0, -1), Error);
}

TEST(Grid, MaxAbsDiff) {
  Grid3D a({1, 2, 2}, 1.0);
  Grid3D b({1, 2, 2}, 1.0);
  EXPECT_DOUBLE_EQ(Grid3D::max_abs_diff(a, b), 0.0);
  b.at(0, 1, 1) = 3.5;
  EXPECT_DOUBLE_EQ(Grid3D::max_abs_diff(a, b), 2.5);
  Grid3D c({2, 2, 2});
  EXPECT_THROW(Grid3D::max_abs_diff(a, c), Error);
}

TEST(Grid, OneDimensionalShape) {
  Grid3D g({1, 1, 8});
  EXPECT_EQ(g.extents().x, 8);
  EXPECT_EQ(g.size(), 8);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformRanges) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[r.uniform_int(0, 4)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Str, JoinSplitTrim) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("h", "he"));
}

TEST(Str, Indent) {
  EXPECT_EQ(indent("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(indent("\n", 2), "\n");
}

TEST(Str, FormatDouble) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.333333333, 3), "0.333");
}

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(JsonUnicode, BmpEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");    // é
  EXPECT_EQ(Json::parse("\"\\u20AC\"").as_string(), "\xE2\x82\xAC"); // €
}

TEST(JsonUnicode, SurrogatePairRoundTrip) {
  // \uD83D\uDE00 is U+1F600 (😀): the pair must recombine into one
  // 4-byte UTF-8 sequence, and the writer re-emits the raw bytes.
  const Json v = Json::parse("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
  const std::string dumped = v.dump();
  EXPECT_EQ(dumped, "\"\xF0\x9F\x98\x80\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), v.as_string());
}

TEST(JsonUnicode, LoneSurrogatesRejected) {
  try {
    Json::parse("\"\\uD83D\"");  // unpaired high half
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("surrogate"), std::string::npos);
  }
  EXPECT_THROW(Json::parse("\"\\uDE00\""), Error);         // lone low half
  EXPECT_THROW(Json::parse("\"\\uD83Dx\""), Error);        // high then text
  EXPECT_THROW(Json::parse("\"\\uD83D\\u0041\""), Error);  // high then BMP
  EXPECT_THROW(Json::parse("\"\\uD83D\\uD83D\""), Error);  // high then high
}

TEST(JsonNumber, RejectsMalformedForms) {
  EXPECT_THROW(Json::parse("1.2.3"), Error);
  EXPECT_THROW(Json::parse("1e"), Error);
  EXPECT_THROW(Json::parse("1e+"), Error);
  EXPECT_THROW(Json::parse("1."), Error);
  EXPECT_THROW(Json::parse(".5"), Error);
  EXPECT_THROW(Json::parse("+1"), Error);
  EXPECT_THROW(Json::parse("-"), Error);
  EXPECT_THROW(Json::parse("01"), Error);
  EXPECT_THROW(Json::parse("--1"), Error);
  EXPECT_THROW(Json::parse("[1.2.3]"), Error);
}

TEST(JsonNumber, NegativeZeroKeepsItsSign) {
  const Json v = Json::parse("-0");
  ASSERT_TRUE(v.is_number());
  EXPECT_TRUE(std::signbit(v.as_double()));
  EXPECT_EQ(v.dump(), "-0");
  EXPECT_TRUE(std::signbit(Json::parse(v.dump()).as_double()));
  EXPECT_TRUE(std::signbit(Json::parse("-0.0").as_double()));
  EXPECT_TRUE(std::signbit(Json::parse("-0e3").as_double()));
}

TEST(JsonNumber, HugeExponentsRejectedNotInfinity) {
  // The permissive parser produced +/-inf here, which the writer then
  // dumped as null — a silent round-trip corruption.
  EXPECT_THROW(Json::parse("1e999"), Error);
  EXPECT_THROW(Json::parse("-1e999"), Error);
  EXPECT_THROW(Json::parse("1e99999999999999999999"), Error);
}

TEST(JsonNumber, ExponentAndOverflowForms) {
  EXPECT_DOUBLE_EQ(Json::parse("1e5").as_double(), 100000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2E-2").as_double(), 0.02);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5e1").as_double(), -5.0);
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  // Beyond int64: falls back to the double representation.
  const Json big = Json::parse("92233720368547758080");
  ASSERT_TRUE(big.is_number());
  EXPECT_DOUBLE_EQ(big.as_double(), 9.2233720368547758e19);
  EXPECT_DOUBLE_EQ(Json::parse("1e308").as_double(), 1e308);
}

}  // namespace
}  // namespace artemis
