#include <gtest/gtest.h>

#include "artemis/autotune/deep_tuning.hpp"
#include "artemis/autotune/search.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "test_programs.hpp"

namespace artemis::autotune {
namespace {

using codegen::KernelConfig;
using codegen::TilingScheme;

class AutotuneTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;

  PlanFactory factory_for(const ir::Program& prog) {
    return [&prog, this](const KernelConfig& cfg) {
      return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg,
                                          dev_);
    };
  }
};

TEST_F(AutotuneTest, CandidateBlocksArePrunedPowersOfTwo) {
  TuneOptions opts;
  const auto blocks = candidate_blocks(3, /*streaming=*/false, opts);
  EXPECT_FALSE(blocks.empty());
  for (const auto& b : blocks) {
    for (const int v : {b[0], b[1], b[2]}) {
      EXPECT_GE(v, 4);
      EXPECT_LE(v, 256);
      EXPECT_EQ(v & (v - 1), 0) << "power of two";
    }
    EXPECT_LE(static_cast<std::int64_t>(b[0]) * b[1] * b[2], 1024);
  }
}

TEST_F(AutotuneTest, StreamingBlocksAreTwoDimensional) {
  TuneOptions opts;
  for (const auto& b : candidate_blocks(3, /*streaming=*/true, opts)) {
    EXPECT_EQ(b[2], 1);
  }
}

TEST_F(AutotuneTest, UnrollBoundsDependOnClassification) {
  TuneOptions bw;
  bw.theoretically_bandwidth_bound = true;
  TuneOptions cb;
  cb.theoretically_bandwidth_bound = false;
  int max_bw = 0, max_cb = 0;
  for (const auto& u : candidate_unrolls(3, bw)) {
    max_bw = std::max(max_bw, u[0] * u[1] * u[2]);
  }
  for (const auto& u : candidate_unrolls(3, cb)) {
    max_cb = std::max(max_cb, u[0] * u[1] * u[2]);
  }
  EXPECT_EQ(max_bw, 8);
  EXPECT_EQ(max_cb, 4);
}

TEST_F(AutotuneTest, UnrollsSortedByVolume) {
  TuneOptions opts;
  const auto unrolls = candidate_unrolls(3, opts);
  for (std::size_t i = 1; i < unrolls.size(); ++i) {
    EXPECT_LE(unrolls[i - 1][0] * unrolls[i - 1][1] * unrolls[i - 1][2],
              unrolls[i][0] * unrolls[i][1] * unrolls[i][2]);
  }
}

TEST_F(AutotuneTest, DisableUnrollCollapsesFactorList) {
  TuneOptions opts;
  opts.disable_unroll = true;
  const auto unrolls = candidate_unrolls(3, opts);
  ASSERT_EQ(unrolls.size(), 1u);
  EXPECT_EQ(unrolls[0], (std::array<int, 3>{1, 1, 1}));
}

TEST_F(AutotuneTest, HierarchicalFindsFeasibleBest) {
  const auto prog = stencils::benchmark_program("miniflux", 128);
  const auto factory = factory_for(prog);
  KernelConfig seed;
  const TuneResult r = hierarchical_tune(factory, seed, dev_, params_);
  EXPECT_TRUE(r.best.eval.valid);
  EXPECT_GT(r.best.eval.tflops(), 0.0);
  EXPECT_GT(r.evaluated_stage1, 10);
  EXPECT_FALSE(r.leaderboard.empty());
  // Leaderboard sorted best-first.
  for (std::size_t i = 1; i < r.leaderboard.size(); ++i) {
    EXPECT_LE(r.leaderboard[i - 1].time_s, r.leaderboard[i].time_s);
  }
}

TEST_F(AutotuneTest, HierarchicalCheaperThanExhaustive) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  ir::StencilCall call = prog.steps[0].body[0].call;
  const PlanFactory factory = [&](const KernelConfig& cfg) {
    return codegen::build_plan_for_call(prog, call, cfg, dev_);
  };
  KernelConfig seed;
  seed.tiling = TilingScheme::StreamSerial;
  seed.stream_axis = 2;
  const TuneResult h = hierarchical_tune(factory, seed, dev_, params_);
  const TuneResult e = exhaustive_tune(factory, seed, dev_, params_);
  // The Section V claim: hierarchical tuning reaches similar performance
  // at a fraction of the evaluations (5h vs >24h with OpenTuner).
  EXPECT_LT(h.total_evaluated(), e.total_evaluated() / 3);
  EXPECT_LE(h.best.time_s, e.best.time_s * 1.10);
}

TEST_F(AutotuneTest, RegisterEscalationSkipsSpillingBudgets) {
  const auto prog = stencils::benchmark_program("rhs4center", 128);
  const auto factory = factory_for(prog);
  KernelConfig seed;
  const TuneResult r = hierarchical_tune(factory, seed, dev_, params_);
  // A 600-FLOP kernel cannot run spill-free at 32 registers: escalation
  // must have skipped small budgets.
  EXPECT_GT(r.skipped_spilling, 0);
  EXPECT_GE(r.best.config.max_registers, 128);
}

TEST_F(AutotuneTest, InfeasibleSpaceThrowsPlanError) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  ir::StencilCall call = prog.steps[0].body[0].call;
  const PlanFactory factory = [&](const KernelConfig&) -> codegen::KernelPlan {
    throw PlanError("nothing is feasible");
  };
  KernelConfig seed;
  EXPECT_THROW(hierarchical_tune(factory, seed, dev_, params_), PlanError);
}

TEST_F(AutotuneTest, RandomTunerDeterministicAndFeasible) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  ir::StencilCall call = prog.steps[0].body[0].call;
  const PlanFactory factory = [&](const KernelConfig& cfg) {
    return codegen::build_plan_for_call(prog, call, cfg, dev_);
  };
  KernelConfig seed;
  TuneOptions opts;
  const auto a = random_tune(factory, seed, dev_, params_, opts, 200, 7);
  const auto b = random_tune(factory, seed, dev_, params_, opts, 200, 7);
  const auto c = random_tune(factory, seed, dev_, params_, opts, 200, 8);
  EXPECT_EQ(a.best.time_s, b.best.time_s);   // same seed, same result
  EXPECT_TRUE(a.best.eval.valid);
  EXPECT_EQ(a.total_evaluated(), 200);
  // Different seed explores a different sample (usually different best).
  EXPECT_TRUE(c.best.eval.valid);
}

TEST_F(AutotuneTest, RandomTunerImprovesWithBudget) {
  const auto prog = stencils::benchmark_program("rhs4center", 128);
  const auto factory = factory_for(prog);
  KernelConfig seed;
  TuneOptions opts;
  const auto small = random_tune(factory, seed, dev_, params_, opts, 20, 3);
  const auto big = random_tune(factory, seed, dev_, params_, opts, 600, 3);
  EXPECT_LE(big.best.time_s, small.best.time_s);
}

// ---- deep tuning and the opt(T) dynamic program -----------------------------

TEST_F(AutotuneTest, DeepTuneFindsCusp) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  DeepTuneOptions opts;
  opts.max_time_tile = 6;
  const DeepTuneResult r = deep_tune(prog, prog.steps[0], dev_, params_, opts);
  ASSERT_GE(r.entries.size(), 2u);
  // Fig. 4: performance improves with fusion then drops; the tipping point
  // is an interior tile size under 5 (paper: "under 4 time steps" for all
  // evaluated iterative stencils; our model places it at 2-4).
  EXPECT_GE(r.tipping_point, 2);
  EXPECT_LE(r.tipping_point, 4);
  // Per-invocation time grows with x, per-step time dips at the cusp.
  EXPECT_LT(r.entries[0].time_s, r.entries.back().time_s);
}

TEST_F(AutotuneTest, FusionScheduleSumsToT) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 256);
  DeepTuneOptions opts;
  opts.max_time_tile = 4;
  const DeepTuneResult r = deep_tune(prog, prog.steps[0], dev_, params_, opts);
  for (const int T : {1, 2, 3, 5, 7, 12, 13, 25, 64}) {
    const auto sched = fusion_schedule(r, T);
    int sum = 0;
    for (const int x : sched) sum += x;
    EXPECT_EQ(sum, T) << "T=" << T;
  }
}

TEST_F(AutotuneTest, DynamicProgramMatchesBruteForce) {
  // Craft explicit f(x) costs and check opt(T) against exhaustive search.
  DeepTuneResult r;
  const double f[] = {0.0, 10.0, 14.0, 30.0};  // f(1)=10, f(2)=14, f(3)=30
  for (int x = 1; x <= 3; ++x) {
    DeepTuneEntry e;
    e.time_tile = x;
    e.time_s = f[x];
    r.entries.push_back(e);
  }
  for (int T = 1; T <= 12; ++T) {
    // Brute force over compositions via DP with explicit enumeration.
    std::vector<double> best(static_cast<std::size_t>(T) + 1, 1e99);
    best[0] = 0;
    for (int t = 1; t <= T; ++t) {
      for (int x = 1; x <= std::min(3, t); ++x) {
        best[static_cast<std::size_t>(t)] =
            std::min(best[static_cast<std::size_t>(t)],
                     f[x] + best[static_cast<std::size_t>(t - x)]);
      }
    }
    const auto sched = fusion_schedule(r, T);
    EXPECT_NEAR(schedule_time(r, sched), best[static_cast<std::size_t>(T)],
                1e-12)
        << "T=" << T;
  }
}

TEST_F(AutotuneTest, ScheduleUsesCheapestComposition) {
  DeepTuneResult r;
  DeepTuneEntry e1;
  e1.time_tile = 1;
  e1.time_s = 10.0;
  DeepTuneEntry e4;
  e4.time_tile = 4;
  e4.time_s = 12.0;  // 4 steps for barely more than 1: always prefer x=4
  r.entries = {e1, e4};
  const auto sched = fusion_schedule(r, 13);
  // 13 = 4+4+4+1.
  EXPECT_EQ(sched, (std::vector<int>{4, 4, 4, 1}));
}

TEST_F(AutotuneTest, ScheduleTimeThrowsOnUnknownTile) {
  DeepTuneResult r;
  DeepTuneEntry e1;
  e1.time_tile = 1;
  e1.time_s = 1.0;
  r.entries = {e1};
  EXPECT_THROW(schedule_time(r, {2}), Error);
}

// ---- opt(T) edge cases ------------------------------------------------------

namespace {

DeepTuneResult tuned_tiles(std::initializer_list<std::pair<int, double>> fs) {
  DeepTuneResult r;
  for (const auto& [x, t] : fs) {
    DeepTuneEntry e;
    e.time_tile = x;
    e.time_s = t;
    r.entries.push_back(e);
  }
  return r;
}

}  // namespace

TEST_F(AutotuneTest, FusionScheduleZeroIterationsIsEmpty) {
  const auto r = tuned_tiles({{1, 1.0}, {2, 1.5}});
  const auto sched = fusion_schedule(r, 0);
  EXPECT_TRUE(sched.empty());
  EXPECT_DOUBLE_EQ(schedule_time(r, sched), 0.0);
}

TEST_F(AutotuneTest, FusionScheduleSingleIteration) {
  const auto r = tuned_tiles({{1, 1.0}, {2, 1.5}});
  EXPECT_EQ(fusion_schedule(r, 1), (std::vector<int>{1}));
}

TEST_F(AutotuneTest, FusionScheduleThrowsBelowSmallestTile) {
  // Only x=2 and x=4 were tuned: T=1 cannot be composed.
  const auto r = tuned_tiles({{2, 1.0}, {4, 1.8}});
  EXPECT_THROW(fusion_schedule(r, 1), Error);
  EXPECT_THROW(fusion_schedule(r, 3), Error);   // 3 = 2+1? no 1 available
  EXPECT_THROW(fusion_schedule(r, 5), Error);
  // Even T is still fine: 4+2 (2.8) beats 2+2+2 (3.0).
  EXPECT_EQ(fusion_schedule(r, 6), (std::vector<int>{4, 2}));
}

TEST_F(AutotuneTest, FusionScheduleNonDivisibleUsesMixedTiles) {
  // x=2 and x=3: T=7 is not a multiple of either, but 3+2+2 composes it.
  const auto r = tuned_tiles({{2, 1.0}, {3, 1.2}});
  const auto sched = fusion_schedule(r, 7);
  int sum = 0;
  for (const int x : sched) sum += x;
  EXPECT_EQ(sum, 7);
  // The cheapest composition is 3+2+2 (3.2) over 3+3+... (infeasible for
  // the 1 left over) — brute-force check.
  EXPECT_NEAR(schedule_time(r, sched), 3.2, 1e-12);
}

TEST_F(AutotuneTest, FusionScheduleGapTilesSumExactly) {
  // Sparse tile set with gaps (2 and 5 only): every representable T must
  // compose exactly, never approximately.
  const auto r = tuned_tiles({{2, 1.0}, {5, 2.0}});
  for (const int T : {2, 4, 5, 7, 9, 10, 12, 14, 19, 100}) {
    const auto sched = fusion_schedule(r, T);
    int sum = 0;
    for (const int x : sched) {
      EXPECT_TRUE(x == 2 || x == 5) << "T=" << T;
      sum += x;
    }
    EXPECT_EQ(sum, T) << "T=" << T;
  }
  EXPECT_THROW(fusion_schedule(r, 1), Error);
  EXPECT_THROW(fusion_schedule(r, 3), Error);
}

TEST_F(AutotuneTest, FusionScheduleBruteForceSmallT) {
  // Exhaustive composition enumeration for small T against the DP.
  const auto r = tuned_tiles({{1, 3.0}, {2, 5.0}, {3, 6.5}});
  const double f[] = {0.0, 3.0, 5.0, 6.5};
  for (int T = 0; T <= 9; ++T) {
    // Enumerate all compositions of T from {1,2,3} recursively.
    double best = T == 0 ? 0.0 : 1e99;
    std::vector<std::vector<int>> stack = {{}};
    while (!stack.empty()) {
      auto cur = std::move(stack.back());
      stack.pop_back();
      int sum = 0;
      double cost = 0;
      for (const int x : cur) {
        sum += x;
        cost += f[x];
      }
      if (sum == T && !cur.empty()) best = std::min(best, cost);
      if (sum < T) {
        for (int x = 1; x <= 3 && sum + x <= T; ++x) {
          auto next = cur;
          next.push_back(x);
          stack.push_back(std::move(next));
        }
      }
    }
    const auto sched = fusion_schedule(r, T);
    EXPECT_NEAR(schedule_time(r, sched), best, 1e-12) << "T=" << T;
  }
}

TEST_F(AutotuneTest, FusionScheduleRejectsBadInputs) {
  EXPECT_THROW(fusion_schedule(DeepTuneResult{}, 4), Error);  // no entries
  const auto r = tuned_tiles({{1, 1.0}});
  EXPECT_THROW(fusion_schedule(r, -1), Error);
}

}  // namespace
}  // namespace artemis::autotune
