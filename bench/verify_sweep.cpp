// Deep differential-verification sweep: the long-running companion to
// `artemisc --verify`. Where the CI job checks a fixed 200-program block,
// this harness sweeps many seed blocks and reports verification
// throughput (programs and property checks per second), so a change that
// makes the harness drastically slower — or a seed block that starts
// failing — is visible as a bench regression, not a mystery.
//
//   ./bench/verify_sweep                          # 5 blocks x 200 programs
//   ./bench/verify_sweep --blocks=2 --count=50    # quicker look
//
// Exits non-zero if any property fails anywhere in the sweep.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "artemis/common/table.hpp"
#include "artemis/verify/verify.hpp"

using namespace artemis;

int main(int argc, char** argv) {
  int blocks = 5;
  int count = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--blocks=", 9) == 0) {
      blocks = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--count=", 8) == 0) {
      count = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--blocks=N] [--count=N]\n", argv[0]);
      return 2;
    }
  }

  // Spread the blocks far apart so they share no seeds with each other or
  // with the CI block (base 2726177024).
  const std::uint64_t kBlockBases[] = {0xA27E3115u, 1u,          424242u,
                                       999999937u,  0x5EEDF00Du, 0xC0FFEEu};
  const int nbases =
      static_cast<int>(sizeof(kBlockBases) / sizeof(kBlockBases[0]));

  TablePrinter table({"base seed", "programs", "checks", "failures", "sec",
                      "checks/sec"});
  int total_failures = 0;
  int total_checks = 0;
  double total_seconds = 0;
  for (int b = 0; b < blocks; ++b) {
    verify::VerifyOptions opts;
    opts.base_seed = kBlockBases[b % nbases] + static_cast<std::uint64_t>(
                                                   b / nbases) * 1000003u;
    opts.seed_count = count;
    const auto t0 = std::chrono::steady_clock::now();
    const verify::VerifyReport rep = verify::run_verify(opts);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_failures += static_cast<int>(rep.failures.size());
    total_checks += rep.checks_run;
    total_seconds += sec;
    char base[32], rate[32], secs[32];
    std::snprintf(base, sizeof base, "%llu",
                  static_cast<unsigned long long>(opts.base_seed));
    std::snprintf(secs, sizeof secs, "%.2f", sec);
    std::snprintf(rate, sizeof rate, "%.0f", rep.checks_run / sec);
    table.add_row({base, std::to_string(rep.programs_checked),
                   std::to_string(rep.checks_run),
                   std::to_string(rep.failures.size()), secs, rate});
    for (const auto& f : rep.failures) {
      std::fprintf(stderr, "FAIL %s seed=%llu: %s\n%s\n",
                   verify::property_name(f.property),
                   static_cast<unsigned long long>(f.seed), f.detail.c_str(),
                   f.program_dsl.c_str());
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total: %d checks in %.1fs (%.0f checks/sec), %d failures\n",
              total_checks, total_seconds, total_checks / total_seconds,
              total_failures);
  return total_failures == 0 ? 0 : 1;
}
