#pragma once

#include <string>
#include <vector>

#include "artemis/gpumodel/device.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::transform {

/// Kernel fission (Section VI-B). All variants rewrite a program whose
/// step list calls one monolithic stencil into a program with several
/// smaller stencils called in sequence, replicating the scalar-temporary
/// statements each sub-kernel needs (Fig. 3). The result re-emits as DSL
/// text ("ARTEMIS generates split versions ... and writes them out as DSL
/// specification files").

/// trivial-fission: one kernel per distinct output array, carrying the
/// transitive closure of local temporaries it reads.
ir::Program trivial_fission(const ir::Program& prog,
                            const std::string& stencil_name);

/// recompute-fission: greedily pack output arrays into kernels while the
/// kernel's recomputation halo stays <= max(4, r) (r = max statement
/// order) AND the estimated register demand stays within `reg_budget`.
/// With a generous budget this degenerates to maxfuse; with a tight one it
/// approaches trivial fission.
ir::Program recompute_fission(const ir::Program& prog,
                              const std::string& stencil_name,
                              const gpumodel::DeviceSpec& dev,
                              int reg_budget = 255);

}  // namespace artemis::transform
