file(REMOVE_RECURSE
  "CMakeFiles/cache_validation.dir/cache_validation.cpp.o"
  "CMakeFiles/cache_validation.dir/cache_validation.cpp.o.d"
  "cache_validation"
  "cache_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
