// Reproduces the Section V tuning-cost claim: hierarchical autotuning
// reaches the performance of exhaustive (OpenTuner-style) search at a
// small fraction of the configurations evaluated. The paper reports >24h
// of exhaustive tuning vs <5h hierarchical for a spatial 7-point Jacobi;
// in the simulator the honest unit is "configurations evaluated".

#include <chrono>
#include <cstdio>
#include <thread>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  TablePrinter table({"benchmark", "tuner", "configs", "skipped (spill)",
                      "infeasible", "best TFLOPS"});

  for (const char* name : {"7pt-smoother", "helmholtz", "rhs4center"}) {
    const auto prog = stencils::benchmark_program(name);
    const ir::StencilCall call =
        stencils::benchmark(name).iterative ? prog.steps[0].body[0].call
                                            : prog.steps[0].call;
    const autotune::PlanFactory factory =
        [&prog, call, &dev](const codegen::KernelConfig& cfg) {
          return codegen::build_plan_for_call(prog, call, cfg, dev);
        };
    codegen::KernelConfig seed;
    seed.tiling = codegen::TilingScheme::StreamSerial;
    seed.stream_axis = 2;

    const auto h =
        autotune::hierarchical_tune(factory, seed, dev, params, {});
    autotune::TuneOptions ex;
    const auto e = autotune::exhaustive_tune(factory, seed, dev, params, ex);
    // Generic random search (the OpenTuner stand-in) at the hierarchical
    // tuner's budget.
    const auto r = autotune::random_tune(factory, seed, dev, params, ex,
                                         h.total_evaluated());

    table.add_row({name, "hierarchical",
                   std::to_string(h.total_evaluated()),
                   std::to_string(h.skipped_spilling),
                   std::to_string(h.infeasible),
                   format_double(h.best.eval.tflops(), 4)});
    table.add_row({name, "random (same budget)",
                   std::to_string(r.total_evaluated()),
                   std::to_string(r.skipped_spilling),
                   std::to_string(r.infeasible),
                   format_double(r.best.eval.tflops(), 4)});
    table.add_row({name, "exhaustive", std::to_string(e.total_evaluated()),
                   std::to_string(e.skipped_spilling),
                   std::to_string(e.infeasible),
                   format_double(e.best.eval.tflops(), 4)});
  }

  std::printf("Section V: hierarchical vs exhaustive autotuning cost\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "Shape check: hierarchical tuning evaluates a small fraction of the\n"
      "exhaustive space (paper: <5h vs >24h wall clock with OpenTuner) while\n"
      "reaching performance within a few percent. Register-budget\n"
      "escalation additionally skips spilling configurations outright.\n\n");

  // Work-stealing evaluation: the exhaustive sweep (the largest candidate
  // set here) at increasing --jobs. The plan must not move at all — the
  // parallel tuner commits in enumeration order — only the wall clock
  // should.
  {
    const auto prog = stencils::benchmark_program("rhs4center");
    const ir::StencilCall call = prog.steps[0].call;
    const autotune::PlanFactory factory =
        [&prog, call, &dev](const codegen::KernelConfig& cfg) {
          return codegen::build_plan_for_call(prog, call, cfg, dev);
        };
    codegen::KernelConfig seed;
    seed.tiling = codegen::TilingScheme::StreamSerial;
    seed.stream_axis = 2;

    TablePrinter sweep({"jobs", "configs", "wall s", "configs/s", "speedup",
                        "best config unchanged"});
    double serial_s = 0;
    std::string serial_best;
    for (const int jobs : {1, 2, 4, 8}) {
      autotune::TuneOptions opts;
      opts.jobs = jobs;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r =
          autotune::exhaustive_tune(factory, seed, dev, params, opts);
      const double wall_s = seconds_since(t0);
      const std::string best = autotune::serialize_config(r.best.config);
      if (jobs == 1) {
        serial_s = wall_s;
        serial_best = best;
      }
      sweep.add_row({std::to_string(jobs),
                     std::to_string(r.total_evaluated()),
                     format_double(wall_s, 3),
                     format_double(r.total_evaluated() / wall_s, 0),
                     format_double(serial_s / wall_s, 2),
                     best == serial_best ? "yes" : "NO"});
    }
    std::printf(
        "Parallel candidate evaluation (--jobs sweep, rhs4center, "
        "%u hardware threads)\n\n%s\n",
        std::thread::hardware_concurrency(), sweep.to_string().c_str());
    std::printf(
        "Shape check: the chosen config is byte-identical at every\n"
        "parallelism (deterministic ordered reduction; see\n"
        "docs/ROBUSTNESS.md). configs/s scales with jobs up to the hardware\n"
        "thread count; past it (or on a single-core machine) the sweep only\n"
        "measures scheduling overhead.\n");
  }
  return 0;
}
