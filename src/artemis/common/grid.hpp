#pragma once

#include <cstdint>
#include <vector>

#include "artemis/common/check.hpp"

namespace artemis {

/// Extents of a (up to) 3D rectangular domain, ordered outermost to
/// innermost: [z, y, x]. Lower-dimensional arrays use extent 1 in the
/// missing leading dimensions, e.g. a 1D array of length N is {1, 1, N}.
struct Extents {
  std::int64_t z = 1;
  std::int64_t y = 1;
  std::int64_t x = 1;

  std::int64_t volume() const { return z * y * x; }
  bool operator==(const Extents&) const = default;
};

/// A dense, row-major 3D grid of doubles. This is the storage substrate for
/// both the reference interpreter and the tiled functional executor; it
/// stands in for a cudaMalloc'd device allocation.
class Grid3D {
 public:
  Grid3D() = default;
  explicit Grid3D(Extents e, double fill = 0.0)
      : extents_(e), data_(static_cast<std::size_t>(e.volume()), fill) {
    ARTEMIS_CHECK(e.z >= 1 && e.y >= 1 && e.x >= 1);
  }

  const Extents& extents() const { return extents_; }
  std::int64_t size() const { return extents_.volume(); }

  bool in_bounds(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return z >= 0 && z < extents_.z && y >= 0 && y < extents_.y && x >= 0 &&
           x < extents_.x;
  }

  double& at(std::int64_t z, std::int64_t y, std::int64_t x) {
    return data_[index(z, y, x)];
  }
  double at(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return data_[index(z, y, x)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Maximum absolute elementwise difference; grids must be congruent.
  static double max_abs_diff(const Grid3D& a, const Grid3D& b);

 private:
  std::size_t index(std::int64_t z, std::int64_t y, std::int64_t x) const {
    ARTEMIS_CHECK_MSG(in_bounds(z, y, x), "grid access (" << z << "," << y
                                                          << "," << x
                                                          << ") out of bounds");
    return static_cast<std::size_t>((z * extents_.y + y) * extents_.x + x);
  }

  Extents extents_;
  std::vector<double> data_;
};

}  // namespace artemis
