// The tutorial kernel (docs/TUTORIAL.md): a 3D order-2 anisotropic
// diffusion step with 1D coefficient arrays pinned to global memory and a
// deep-tunable iterate block. Used by the CI smoke run:
//   artemisc examples/diffuse.dsl --report r.json --trace t.json
parameter L=320, M=320, N=320;
iterator k, j, i;
double u[L,M,N], un[L,M,N], kx[N], ky[M], kz[L], dt;
copyin u, kx, ky, kz, dt;
stencil diffuse (UN, U, KX, KY, KZ, dt) {
  #assign gmem (KX, KY, KZ)
  UN[k][j][i] = U[k][j][i] + dt*(
      KX[i]*(U[k][j][i+1] - 2.0*U[k][j][i] + U[k][j][i-1])
    + KY[j]*(U[k][j+1][i] - 2.0*U[k][j][i] + U[k][j-1][i])
    + KZ[k]*(U[k+1][j][i] - 2.0*U[k][j][i] + U[k-1][j][i]));
}
iterate 16 {
  diffuse (un, u, kx, ky, kz, dt);
  swap (un, u);
}
copyout u;
