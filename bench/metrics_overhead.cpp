// Counting-mode overhead: plain bytecode execution vs. metrics counting.
//
// The execution observatory (ExecOptions::trace) streams per-stage line
// accesses and interior/rim counters out of the bytecode engine. Its
// contract is "observability for free": grids and returned counters stay
// bit-identical to a plain run, and the slowdown stays under 2x. This
// harness measures that slowdown on the paper kernels and enforces both
// halves of the contract, writing a machine-readable report (--out,
// default BENCH_metrics.json) consumed by the CI metrics job.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/json.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

struct RunOutcome {
  sim::GridSet gs;
  std::vector<sim::ExecCounters> counters;  ///< one per stencil plan
  std::int64_t points = 0;
  double seconds = 0;
  std::int64_t trace_stages = 0;  ///< counting runs: stage records seen
};

/// Execute every plan of the program once. When `counted` is set, each
/// plan execution runs in counting mode with a fresh PlanTrace.
RunOutcome run_once(const ir::Program& prog,
                    const std::vector<codegen::KernelPlan>& plans,
                    std::uint64_t seed, int jobs, bool counted) {
  RunOutcome r{sim::GridSet::from_program(prog, seed), {}, 0, 0, 0};
  std::size_t next_plan = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      r.gs.swap(step.swap.a, step.swap.b);
      continue;
    }
    sim::ExecOptions opts;
    opts.engine = sim::SimEngine::Bytecode;
    opts.jobs = jobs;
    sim::PlanTrace trace;
    if (counted) opts.trace = &trace;
    const auto c = sim::execute_plan(plans.at(next_plan++), r.gs, opts);
    r.points += c.computed_points;
    r.counters.push_back(c);
    r.trace_stages += static_cast<std::int64_t>(trace.stages.size());
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return r;
}

bool outputs_identical(const ir::Program& prog, const sim::GridSet& a,
                       const sim::GridSet& b) {
  for (const auto& out : prog.copyout) {
    const Grid3D& ga = a.grid(out);
    const Grid3D& gb = b.grid(out);
    if (std::memcmp(ga.raw().data(), gb.raw().data(),
                    ga.raw().size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

bool counters_identical(const RunOutcome& a, const RunOutcome& b) {
  if (a.counters.size() != b.counters.size()) return false;
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    const auto& x = a.counters[i];
    const auto& y = b.counters[i];
    if (x.computed_points != y.computed_points ||
        x.skipped_points != y.skipped_points ||
        x.global_read_elems != y.global_read_elems ||
        x.global_write_elems != y.global_write_elems ||
        x.scratch_read_elems != y.scratch_read_elems ||
        x.scratch_write_elems != y.scratch_write_elems ||
        x.blocks != y.blocks) {
      return false;
    }
  }
  return true;
}

std::int64_t flag_int(int argc, char** argv, const char* name,
                      std::int64_t dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::stoll(std::string(argv[i]).substr(prefix.size()));
    }
  }
  return dflt;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t extent = flag_int(argc, argv, "extent", 64);
  const int reps = static_cast<int>(flag_int(argc, argv, "reps", 3));
  const int jobs = static_cast<int>(flag_int(argc, argv, "jobs", 1));
  const std::string out_path =
      flag_str(argc, argv, "out", "BENCH_metrics.json");
  const std::string kernels =
      flag_str(argc, argv, "kernels", "7pt-smoother,helmholtz,hypterm");

  const auto dev = gpumodel::p100();

  TablePrinter table({"kernel", "points", "plain s", "counted s", "overhead x",
                      "identical"});
  Json report = Json::object();
  report.set("extent", Json(extent));
  report.set("reps", Json(reps));
  report.set("jobs", Json(static_cast<std::int64_t>(jobs)));
  Json rows = Json::array();
  bool all_identical = true;
  double worst_overhead = 0;

  for (const auto& name : split(kernels, ',')) {
    const ir::Program prog = stencils::benchmark_program(name, extent, 1);
    // Pin arrays to global memory (the wide kernels exceed the shared
    // budget), matching sim_throughput so the baselines are comparable.
    codegen::BuildOptions gopts;
    gopts.use_shared_memory = false;
    std::vector<codegen::KernelPlan> plans;
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind != ir::ExecStep::Kind::Stencil) continue;
      std::vector<std::string> args;
      for (const auto& p : step.stencil.def->params) {
        args.push_back(step.stencil.binding.at(p));
      }
      plans.push_back(codegen::build_plan_for_call(
          prog, ir::StencilCall{step.stencil.name, std::move(args)},
          codegen::KernelConfig{}, dev, gopts));
    }

    const auto best = [&](bool counted) {
      RunOutcome first = run_once(prog, plans, 42, jobs, counted);
      double best_s = first.seconds;
      for (int r = 1; r < reps; ++r) {
        const RunOutcome o = run_once(prog, plans, 42, jobs, counted);
        best_s = std::min(best_s, o.seconds);
      }
      first.seconds = best_s;
      return first;
    };

    const RunOutcome plain = best(false);
    const RunOutcome counted = best(true);
    const double overhead = counted.seconds / plain.seconds;
    const bool identical = outputs_identical(prog, plain.gs, counted.gs) &&
                           counters_identical(plain, counted) &&
                           counted.trace_stages > 0;
    all_identical = all_identical && identical;
    worst_overhead = std::max(worst_overhead, overhead);

    table.add_row({name, std::to_string(plain.points),
                   format_double(plain.seconds, 4),
                   format_double(counted.seconds, 4),
                   format_double(overhead, 3), identical ? "yes" : "NO"});

    Json row = Json::object();
    row.set("kernel", Json(name));
    row.set("points", Json(plain.points));
    row.set("plain_s", Json(plain.seconds));
    row.set("counted_s", Json(counted.seconds));
    row.set("overhead", Json(overhead));
    row.set("outputs_identical", Json(identical));
    rows.push_back(std::move(row));
  }
  report.set("kernels", std::move(rows));
  report.set("worst_overhead", Json(worst_overhead));
  report.set("overhead_budget", Json(2.0));

  std::ofstream(out_path) << report.dump(2) << "\n";
  std::printf("Counting-mode overhead (extent %lld^3, best of %d, %d jobs)\n\n%s\n",
              static_cast<long long>(extent), reps, jobs,
              table.to_string().c_str());
  std::printf("Report written to %s\n", out_path.c_str());
  if (!all_identical) {
    std::printf("ERROR: counting mode perturbed grids or counters\n");
    return 1;
  }
  if (worst_overhead >= 2.0) {
    std::printf("ERROR: counting-mode overhead %.3fx exceeds the 2x budget\n",
                worst_overhead);
    return 1;
  }
  return 0;
}
