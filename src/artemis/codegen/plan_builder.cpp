#include "artemis/codegen/plan_builder.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "artemis/common/str.hpp"
#include "artemis/gpumodel/occupancy.hpp"
#include "artemis/transform/fold.hpp"
#include "artemis/transform/retime.hpp"

namespace artemis::codegen {

namespace {

/// Count the syntactic accesses (reads + writes) to each array across all
/// stages; the rationing loop demotes the least-accessed buffer first
/// (Section II-B2: "choose a shared memory buffer with minimum number of
/// accesses, and demote its storage to global memory").
std::map<std::string, std::int64_t> count_accesses(
    const std::vector<ir::BoundStencil>& stages) {
  std::map<std::string, std::int64_t> counts;
  for (const auto& stage : stages) {
    for (const auto& st : stage.stmts) {
      if (!st.declares_local) ++counts[st.lhs_name];
      ir::visit(*st.rhs, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::ArrayRef) ++counts[e.name];
      });
    }
  }
  return counts;
}

/// Per-block shared memory bytes for the current placement.
std::int64_t compute_shmem_bytes(const KernelPlan& plan) {
  const auto& cfg = plan.config;
  const std::int64_t tx = plan.tile_extent(0);
  const std::int64_t ty = plan.dims >= 2 ? plan.tile_extent(1) : 1;
  const std::int64_t tz = plan.dims >= 3 ? plan.tile_extent(2) : 1;
  const bool streaming = cfg.tiling != TilingScheme::Spatial3D;

  std::set<int> counted_groups;
  std::int64_t bytes = 0;
  for (const auto& [name, pl] : plan.placement) {
    if (pl.space != ir::MemSpace::Shared) continue;
    if (pl.fold_group >= 0) {
      if (counted_groups.count(pl.fold_group)) continue;
      counted_groups.insert(pl.fold_group);
    }
    const auto it = plan.info.arrays.find(name);
    ARTEMIS_CHECK(it != plan.info.arrays.end());
    const auto& ai = it->second;
    // Effective halo (array radius + fused recompute expansion), per axis.
    std::array<std::int64_t, 3> r = {0, 0, 0};
    if (const auto eh = plan.eff_halo.find(name); eh != plan.eff_halo.end()) {
      for (std::size_t a = 0; a < 3; ++a) r[a] = eh->second[a];
    }
    const bool is_internal =
        std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                  name) != plan.internal_arrays.end();
    std::int64_t buf;
    if (ai.dims < plan.dims && pl.user_pinned) {
      // An expert pinning a low-dimensional array to shared memory gets a
      // precisely-sized line buffer.
      buf = tx + 2 * r[0];
    } else if (ai.dims < plan.dims) {
      // Naive default (Section II-B1): the generator allocates a
      // tile-shaped buffer per input array without specializing
      // low-dimensional arrays, wasting capacity -- exactly the behavior
      // user-guided resource assignment exists to override.
      buf = (tx + 2 * r[0]) * (plan.dims >= 2 ? (ty + 2 * r[1]) : 1);
      if (!streaming && plan.dims >= 3) buf *= tz + 2 * r[2];
    } else if (streaming && plan.dims == 3 && cfg.stream_axis == 2) {
      // One plane in shared memory; the +/- stream planes live in
      // per-thread registers (Listing 2), unless the array is internal to
      // a fused DAG, in which case all 2r+1 planes must be shared so that
      // neighboring threads can read produced values. Streaming pipelines
      // fused stages along the sweep (Fig. 1c), so the plane count uses
      // the array's OWN sweep radius, not the accumulated halo.
      const std::int64_t plane = (tx + 2 * r[0]) * (ty + 2 * r[1]);
      const std::int64_t own_rz = ai.radius[0];  // iterator 0 = z
      std::int64_t planes = 1;
      if (is_internal) planes = 2 * own_rz + 1;
      if (plan.retimed && !is_internal) planes = 1;
      buf = plane * planes;
    } else {
      buf = (tx + 2 * r[0]) * (ty + 2 * r[1]) * (tz + 2 * r[2]);
    }
    bytes += buf * 8;
  }
  return bytes;
}

}  // namespace

KernelConfig config_from_pragma(const ir::Program& prog,
                                const ir::PragmaInfo& pragma, int dims) {
  KernelConfig cfg;
  // Paper baseline defaults (Section VIII-G): (x=32,y=16) with streaming
  // for 3D iterative stencils, (x=16,y=4,z=4) for non-streaming versions.
  if (pragma.stream_iter) {
    cfg.tiling = TilingScheme::StreamSerial;
    const int iter_idx = prog.iterator_index(*pragma.stream_iter);
    ARTEMIS_CHECK_MSG(iter_idx >= 0, "pragma streams unknown iterator");
    cfg.stream_axis = dims - 1 - iter_idx;
    cfg.block = {32, 16, 1};
  } else if (dims == 3) {
    cfg.tiling = TilingScheme::Spatial3D;
    cfg.block = {16, 4, 4};
  } else {
    cfg.block = {32, dims >= 2 ? 8 : 1, 1};
  }
  if (!pragma.block.empty()) {
    cfg.block = {1, 1, 1};
    for (std::size_t i = 0; i < pragma.block.size() && i < 3; ++i) {
      cfg.block[i] = static_cast<int>(pragma.block[i]);
    }
  }
  for (const auto& [iter, factor] : pragma.unroll) {
    const int iter_idx = prog.iterator_index(iter);
    ARTEMIS_CHECK_MSG(iter_idx >= 0, "pragma unrolls unknown iterator");
    cfg.unroll[static_cast<std::size_t>(dims - 1 - iter_idx)] =
        static_cast<int>(factor);
  }
  cfg.target_occupancy = pragma.occupancy;
  return cfg;
}

KernelPlan build_plan(const ir::Program& prog,
                      std::vector<ir::BoundStencil> stages,
                      const KernelConfig& config,
                      const gpumodel::DeviceSpec& dev,
                      const BuildOptions& opts) {
  ARTEMIS_CHECK_MSG(!stages.empty(), "cannot plan an empty stage list");

  KernelPlan plan;
  plan.config = config;
  plan.time_tile = config.time_tile;
  plan.dims = static_cast<int>(prog.iterators.size());
  plan.iterators = prog.iterators;

  // Merge analysis over stages.
  std::vector<std::string> names;
  for (const auto& s : stages) names.push_back(s.name);
  plan.name = join(names, "+");
  std::vector<ir::StencilInfo> stage_infos;
  stage_infos.reserve(stages.size());
  {
    // Analyze each stage and merge arrays / flops / radii.
    for (const auto& stage : stages) {
      stage_infos.push_back(ir::analyze(prog, stage));
      const ir::StencilInfo& si = stage_infos.back();
      plan.info.flops_per_point += si.flops_per_point;
      plan.info.num_statements += si.num_statements;
      for (const auto& [name, ai] : si.arrays) {
        auto [it, inserted] = plan.info.arrays.try_emplace(name, ai);
        if (!inserted) {
          auto& dst = it->second;
          dst.read |= ai.read;
          dst.written |= ai.written;
          for (const auto& off : ai.read_offsets) {
            if (std::find(dst.read_offsets.begin(), dst.read_offsets.end(),
                          off) == dst.read_offsets.end()) {
              dst.read_offsets.push_back(off);
            }
          }
          for (const auto& off : ai.write_offsets) {
            if (std::find(dst.write_offsets.begin(), dst.write_offsets.end(),
                          off) == dst.write_offsets.end()) {
              dst.write_offsets.push_back(off);
            }
          }
          for (std::size_t d = 0; d < 3; ++d) {
            dst.radius[d] = std::max(dst.radius[d], ai.radius[d]);
          }
        }
      }
      for (const auto& s : si.scalars_read) plan.info.scalars_read.insert(s);
      for (std::size_t d = 0; d < 3; ++d) {
        plan.info.radius[d] += si.radius[d];  // fused recompute halo grows
      }
    }
    plan.info.order = *std::max_element(plan.info.radius.begin(),
                                        plan.info.radius.end());
    plan.info.num_io_arrays = static_cast<int>(plan.info.arrays.size());
    for (const auto& [name, ai] : plan.info.arrays) {
      if (ai.written) plan.info.outputs.push_back(name);
      if (ai.read) plan.info.inputs.push_back(name);
    }
  }

  // Convert cumulative radii (per iterator) to per-axis halo.
  for (int d = 0; d < plan.dims; ++d) {
    plan.radius[static_cast<std::size_t>(plan.dims - 1 - d)] =
        plan.info.radius[static_cast<std::size_t>(d)];
  }

  // Per-stage radii/expansions and per-array effective halos (the
  // overlapped-tiling recompute geometry of Sections III-A1 and VI-A).
  {
    const std::size_t n = stages.size();
    plan.stage_flops.resize(n);
    plan.stage_radius.assign(n, {0, 0, 0});
    plan.stage_expand.assign(n, {0, 0, 0});
    for (std::size_t s = 0; s < n; ++s) {
      plan.stage_flops[s] = stage_infos[s].flops_per_point;
      for (int d = 0; d < plan.dims; ++d) {
        plan.stage_radius[s][static_cast<std::size_t>(plan.dims - 1 - d)] =
            stage_infos[s].radius[static_cast<std::size_t>(d)];
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t s2 = s + 1; s2 < n; ++s2) {
        for (std::size_t a = 0; a < 3; ++a) {
          plan.stage_expand[s][a] += plan.stage_radius[s2][a];
        }
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& [name, ai] : stage_infos[s].arrays) {
        if (!ai.read) {
          plan.eff_halo.try_emplace(name, std::array<int, 3>{0, 0, 0});
          continue;
        }
        auto& eh = plan.eff_halo
                       .try_emplace(name, std::array<int, 3>{0, 0, 0})
                       .first->second;
        for (int d = 0; d < plan.dims; ++d) {
          const auto axis = static_cast<std::size_t>(plan.dims - 1 - d);
          eh[axis] = std::max(
              eh[axis], ai.radius[static_cast<std::size_t>(d)] +
                            plan.stage_expand[s][axis]);
        }
      }
    }
  }

  // Output domain: extents of the first written array of the last stage.
  {
    const std::string& out_name = [&]() -> const std::string& {
      for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
        for (const auto& st : it->stmts) {
          if (!st.declares_local) return st.lhs_name;
        }
      }
      throw PlanError("plan has no output statement");
    }();
    const ir::ArrayDecl* decl = prog.find_array(out_name);
    ARTEMIS_CHECK_MSG(decl != nullptr,
                      "output array '" << out_name << "' not declared");
    std::array<std::int64_t, 3> dims_zyx = {1, 1, 1};
    const std::size_t nd = decl->dims.size();
    for (std::size_t d = 0; d < nd; ++d) {
      dims_zyx[3 - nd + d] = prog.param_value(decl->dims[d]);
    }
    plan.domain = {dims_zyx[0], dims_zyx[1], dims_zyx[2]};
  }

  // Launch validity.
  if (config.threads_per_block() > dev.max_threads_per_block) {
    throw PlanError(str_cat("block of ", config.threads_per_block(),
                            " threads exceeds device limit ",
                            dev.max_threads_per_block));
  }
  for (int a = 0; a < 3; ++a) {
    if (config.block[static_cast<std::size_t>(a)] < 1 ||
        config.unroll[static_cast<std::size_t>(a)] < 1) {
      throw PlanError("block and unroll factors must be >= 1");
    }
  }
  if (config.tiling != TilingScheme::Spatial3D &&
      (config.stream_axis < 0 || config.stream_axis >= plan.dims)) {
    throw PlanError("stream axis out of range");
  }
  if (config.tiling != TilingScheme::Spatial3D && plan.dims < 2) {
    throw PlanError("streaming requires a 2D or 3D domain");
  }

  // Internal arrays: outputs of non-final stages consumed only inside the
  // plan and not copied out.
  if (opts.fuse_internal && stages.size() > 1) {
    std::set<std::string> copyout(prog.copyout.begin(), prog.copyout.end());
    for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
      for (const auto& st : stages[s].stmts) {
        if (st.declares_local) continue;
        const std::string& name = st.lhs_name;
        // Written by a non-final stage; is it read by any later stage?
        bool read_later = false;
        for (std::size_t s2 = s + 1; s2 < stages.size() && !read_later;
             ++s2) {
          for (const auto& st2 : stages[s2].stmts) {
            ir::visit(*st2.rhs, [&](const ir::Expr& e) {
              if (e.kind == ir::ExprKind::ArrayRef && e.name == name) {
                read_later = true;
              }
            });
          }
        }
        if (read_later &&
            std::find(plan.internal_arrays.begin(),
                      plan.internal_arrays.end(),
                      name) == plan.internal_arrays.end()) {
          plan.internal_arrays.push_back(name);
          if (copyout.count(name)) {
            plan.materialized_internals.push_back(name);
          }
        }
      }
    }
  }

  // Retiming (Section III-B2): legal only when every decomposed
  // sub-statement is homogenizable along the streaming iterator.
  if (config.retime && config.tiling != TilingScheme::Spatial3D) {
    const int stream_iter = plan.dims - 1 - config.stream_axis;
    bool all = true;
    for (const auto& stage : stages) {
      const auto rt = transform::try_retime(stage.stmts, stream_iter);
      all &= rt.applied;
    }
    plan.retimed = all;
  }

  // Folding (Section III-B4).
  if (config.fold) {
    std::vector<ir::Stmt> all_stmts;
    for (const auto& stage : stages) {
      all_stmts.insert(all_stmts.end(), stage.stmts.begin(),
                       stage.stmts.end());
    }
    plan.fold_groups = transform::find_fold_groups(all_stmts);
  }

  // --- residency assignment --------------------------------------------
  ir::ResourceAssignments pins;
  for (const auto& stage : stages) {
    for (const auto& [name, space] : stage.resources.spaces) {
      pins.spaces[name] = space;  // later stages win on conflict
    }
  }

  for (const auto& [name, ai] : plan.info.arrays) {
    Placement pl;
    const ir::MemSpace pinned = pins.lookup(name);
    const bool internal =
        std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                  name) != plan.internal_arrays.end();
    if (pinned != ir::MemSpace::Auto) {
      pl.space = pinned;
      pl.user_pinned = true;
    } else if (internal) {
      pl.space = opts.use_shared_memory ? ir::MemSpace::Shared
                                        : ir::MemSpace::Global;
    } else if (ai.written) {
      pl.space = ir::MemSpace::Global;  // external outputs stream to DRAM
    } else if (opts.use_shared_memory) {
      // Deliberately naive default: every input is staged in shared
      // memory, mirroring "most code generators will still use N shared
      // memory buffers per input array" (Section II-B1). The rationing
      // loop and user #assign pins refine this.
      pl.space = ir::MemSpace::Shared;
    } else {
      pl.space = ir::MemSpace::Global;
    }
    plan.placement[name] = pl;
  }

  // Attach fold groups to placements (fold only shared buffers).
  for (std::size_t g = 0; g < plan.fold_groups.size(); ++g) {
    bool all_shared = true;
    for (const auto& name : plan.fold_groups[g]) {
      if (plan.placement.at(name).space != ir::MemSpace::Shared) {
        all_shared = false;
      }
    }
    if (all_shared) {
      for (const auto& name : plan.fold_groups[g]) {
        plan.placement.at(name).fold_group = static_cast<int>(g);
      }
    }
  }

  // --- resource rationing -------------------------------------------------
  plan.shmem_bytes_per_block = compute_shmem_bytes(plan);
  const auto accesses = count_accesses(stages);

  // Without an occupancy target there is no rationing: like the naive
  // generators of Section II-B1, an over-capacity mapping simply forces a
  // smaller block (this configuration is infeasible). Demotion is the
  // user-guided resource-rationing extension of Section II-B2.
  if (!config.target_occupancy &&
      plan.shmem_bytes_per_block > dev.shmem_per_block) {
    throw PlanError(str_cat("shared memory demand ",
                            plan.shmem_bytes_per_block,
                            " B exceeds the device's ", dev.shmem_per_block,
                            " B per block; use a smaller block, pin arrays "
                            "to gmem with #assign, or set an occupancy "
                            "target to enable rationing"));
  }

  auto shmem_limit = [&]() -> std::int64_t {
    std::int64_t limit = dev.shmem_per_block;
    if (config.target_occupancy) {
      const double target = *config.target_occupancy;
      ARTEMIS_CHECK_MSG(target > 0.0 && target <= 1.0,
                        "occupancy target must be in (0,1]");
      const auto blocks_needed = static_cast<std::int64_t>(
          std::max(1.0, std::ceil(target * dev.max_threads_per_sm /
                                  static_cast<double>(
                                      config.threads_per_block()))));
      limit = std::min(limit, dev.shmem_per_sm / blocks_needed);
    }
    return limit;
  }();

  while (plan.shmem_bytes_per_block > shmem_limit) {
    // Demote the shared, non-pinned, non-internal array with the fewest
    // accesses. Internal arrays must stay shared (they carry fused data
    // between stages); if only internals remain over budget, fail.
    std::string victim;
    std::int64_t victim_accesses = 0;
    for (const auto& [name, pl] : plan.placement) {
      if (pl.space != ir::MemSpace::Shared || pl.user_pinned) continue;
      if (std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                    name) != plan.internal_arrays.end()) {
        continue;
      }
      const auto it = accesses.find(name);
      const std::int64_t n = it == accesses.end() ? 0 : it->second;
      if (victim.empty() || n < victim_accesses) {
        victim = name;
        victim_accesses = n;
      }
    }
    if (victim.empty()) {
      throw PlanError(str_cat(
          "shared memory demand ", plan.shmem_bytes_per_block,
          " B exceeds limit ", shmem_limit,
          " B and no demotable buffer remains (block too large?)"));
    }
    auto& pl = plan.placement.at(victim);
    pl.space = ir::MemSpace::Global;
    pl.fold_group = -1;
    plan.shmem_bytes_per_block = compute_shmem_bytes(plan);
  }

  plan.stages = std::move(stages);
  return plan;
}

KernelPlan build_plan_for_call(const ir::Program& prog,
                               const ir::StencilCall& call,
                               const KernelConfig& config,
                               const gpumodel::DeviceSpec& dev,
                               const BuildOptions& opts) {
  std::vector<ir::BoundStencil> stages;
  stages.push_back(ir::bind_call(prog, call));
  return build_plan(prog, std::move(stages), config, dev, opts);
}

}  // namespace artemis::codegen
