#pragma once

#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::transform {

/// Statement decomposition (Section III-B2): split an array assignment
/// into a chain of accumulation sub-statements by leveraging the
/// associativity of the top-level +/- chain:
///     B[...] = e1 + e2 - e3;
/// becomes
///     B[...]  = e1;
///     B[...] += e2;
///     B[...] += -e3;
/// Local scalar declarations and statements whose RHS has no top-level
/// +/- chain are returned unchanged (as a single statement).
std::vector<ir::Stmt> decompose_statement(const ir::Stmt& stmt);

/// True if every array access in `e` carries the same offset along the
/// streaming iterator (index `stream_iter` into the program's iterator
/// list). Such an expression can be homogenized: the common offset can be
/// shifted to zero on both sides of the statement. Expressions that read
/// no array along the streaming dimension are trivially homogenizable.
bool is_homogenizable(const ir::Expr& e, int stream_iter);

/// Result of attempting to retime a statement list for streaming along
/// `stream_iter` (Section III-B2).
struct RetimeResult {
  bool applied = false;          ///< all sub-statements homogenizable
  std::vector<ir::Stmt> stmts;   ///< decomposed statement list
  /// Per statement in `stmts`: the common offset of its reads along the
  /// streaming iterator (0 for locals and stream-invariant statements).
  /// The code generator realizes the shift with retimed accumulation
  /// buffers; the statements themselves keep their original offsets so
  /// that semantics (and the functional executor) are unchanged.
  std::vector<std::int64_t> stream_offsets;
  int num_substatements = 0;     ///< accumulation statements produced
};

/// Decompose every statement and check homogenizability of each
/// sub-statement. If every sub-statement can be homogenized, `applied` is
/// true and `stream_offsets` records each sub-statement's shift. If any
/// sub-statement is not homogenizable, `applied` is false and `stmts`
/// echoes the (still decomposed) input.
RetimeResult try_retime(const std::vector<ir::Stmt>& stmts, int stream_iter);

}  // namespace artemis::transform
