#include "artemis/codegen/cuda_emitter.hpp"

#include <algorithm>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/transform/retime.hpp"

namespace artemis::codegen {

namespace {

/// Iterator spelling per axis for a plan (axis 0 = innermost).
const char* kIterNames[3] = {"i", "j", "k"};
const char* kDimNames[3] = {"N", "M", "L"};

std::string linear_index(const ir::Program& prog, const std::string& array,
                         const std::vector<ir::IndexExpr>& indices,
                         const std::vector<std::string>& iters) {
  const ir::ArrayDecl* decl = prog.find_array(array);
  std::vector<std::string> dims;
  if (decl) {
    dims = decl->dims;
  }
  // Build ((z)*M + y)*N + x style flattened index.
  std::string out;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    const auto& ix = indices[d];
    std::string term;
    if (ix.is_const()) {
      term = std::to_string(ix.offset);
    } else {
      term = iters[static_cast<std::size_t>(ix.iter)];
      if (ix.offset > 0) term += "+" + std::to_string(ix.offset);
      if (ix.offset < 0) term += std::to_string(ix.offset);
    }
    if (d == 0) {
      out = "(" + term + ")";
    } else {
      const std::string extent =
          decl && d < dims.size() ? dims[d] : std::string("N");
      out = "(" + out + "*" + extent + " + (" + term + "))";
    }
  }
  return out;
}

/// Context for expression emission.
struct EmitCtx {
  const ir::Program* prog = nullptr;
  const KernelPlan* plan = nullptr;
  bool streaming = false;
  int stream_iter = -1;  ///< program-iterator index of the swept axis
};

std::string emit_expr(const EmitCtx& ctx, const ir::Expr& e);

std::string emit_array_ref(const EmitCtx& ctx, const ir::Expr& e) {
  const auto& plan = *ctx.plan;
  const auto it = plan.placement.find(e.name);
  const ir::MemSpace space =
      it != plan.placement.end() ? it->second.space : ir::MemSpace::Global;

  if (space == ir::MemSpace::Shared || space == ir::MemSpace::Reg) {
    // Streamed arrays: the center plane lives in shared memory; the +/-
    // planes live in registers (Listing 2 naming).
    if (ctx.streaming && ctx.stream_iter >= 0 &&
        static_cast<int>(e.indices.size()) == plan.dims) {
      const auto& sidx =
          e.indices[static_cast<std::size_t>(ctx.stream_iter)];
      const std::int64_t off = sidx.is_const() ? 0 : sidx.offset;
      const auto eh = plan.eff_halo.count(e.name)
                          ? plan.eff_halo.at(e.name)
                          : std::array<int, 3>{0, 0, 0};
      std::string tail;
      for (std::size_t d = 0; d < e.indices.size(); ++d) {
        if (static_cast<int>(d) == ctx.stream_iter) continue;
        const auto& ix = e.indices[d];
        std::string term = ctx.prog->iterators[static_cast<std::size_t>(
            ix.iter)];
        const int axis = plan.dims - 1 - ix.iter;
        term += d + 1 == e.indices.size() ? "-i0" : "-j0";
        // Buffer origin is (tile origin - halo): shift by halo + offset.
        const std::int64_t shift =
            ix.offset + eh[static_cast<std::size_t>(axis)];
        if (shift > 0) term += "+" + std::to_string(shift);
        if (shift < 0) term += std::to_string(shift);
        tail += "[" + term + "]";
      }
      if (off == 0) return str_cat(e.name, "_shm_c0", tail);
      if (off < 0) return str_cat(e.name, "_reg_m", -off);
      return str_cat(e.name, "_reg_p", off);
    }
    // Spatial shared tile: local coordinates, shifted by the halo since
    // the buffer origin is (tile origin - halo).
    const auto eh = plan.eff_halo.count(e.name)
                        ? plan.eff_halo.at(e.name)
                        : std::array<int, 3>{0, 0, 0};
    std::string tail;
    for (std::size_t d = 0; d < e.indices.size(); ++d) {
      const auto& ix = e.indices[d];
      std::string term =
          ctx.prog->iterators[static_cast<std::size_t>(ix.iter)];
      const int axis = plan.dims - 1 - ix.iter;
      term += str_cat("-", kIterNames[axis], "0");
      const std::int64_t shift =
          ix.offset + eh[static_cast<std::size_t>(axis)];
      if (shift > 0) term += "+" + std::to_string(shift);
      if (shift < 0) term += std::to_string(shift);
      tail += "[" + term + "]";
    }
    return str_cat(e.name, "_shm", tail);
  }
  return str_cat(e.name, "[",
                 linear_index(*ctx.prog, e.name, e.indices,
                              ctx.prog->iterators),
                 "]");
}

std::string emit_expr(const EmitCtx& ctx, const ir::Expr& e) {
  switch (e.kind) {
    case ir::ExprKind::Number: {
      std::string s = format_double(e.number, 17);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ir::ExprKind::ScalarRef:
      return e.name;
    case ir::ExprKind::ArrayRef:
      return emit_array_ref(ctx, e);
    case ir::ExprKind::Unary:
      return "-(" + emit_expr(ctx, *e.args[0]) + ")";
    case ir::ExprKind::Binary: {
      const std::string lhs = emit_expr(ctx, *e.args[0]);
      const std::string rhs = emit_expr(ctx, *e.args[1]);
      const bool parens = e.bop == ir::BinOp::Mul || e.bop == ir::BinOp::Div;
      if (parens) {
        return "(" + lhs + ") " + ir::bin_op_token(e.bop) + " (" + rhs + ")";
      }
      return lhs + " " + ir::bin_op_token(e.bop) + " " + rhs;
    }
    case ir::ExprKind::Call: {
      std::vector<std::string> args;
      for (const auto& a : e.args) args.push_back(emit_expr(ctx, *a));
      const std::string fn = (e.name == "min" || e.name == "max")
                                 ? "f" + e.name
                                 : e.name;
      return fn + "(" + join(args, ", ") + ")";
    }
  }
  return "/*?*/";
}

std::string guard_condition(const KernelPlan& plan) {
  std::vector<std::string> conds;
  for (int axis = plan.dims - 1; axis >= 0; --axis) {
    const auto a = static_cast<std::size_t>(axis);
    const char* it = kIterNames[axis];
    const char* dim = kDimNames[axis];
    conds.push_back(str_cat(it, " >= ", plan.radius[a], " && ", it, " < ",
                            dim, " - ", plan.radius[a]));
  }
  return join(conds, " && ");
}

/// Parameter list of the kernel: pointers for arrays, doubles for scalars,
/// ints for extents.
std::string kernel_params(const ir::Program& /*prog*/, const KernelPlan& plan) {
  std::vector<std::string> params;
  for (const auto& [name, pl] : plan.placement) {
    (void)pl;
    const bool written = plan.info.arrays.at(name).written;
    params.push_back(str_cat(written ? "double* __restrict__ "
                                     : "const double* __restrict__ ",
                             name));
  }
  for (const auto& s : plan.info.scalars_read) {
    params.push_back("double " + s);
  }
  for (int axis = plan.dims - 1; axis >= 0; --axis) {
    params.push_back(str_cat("int ", kDimNames[axis]));
  }
  return join(params, ", ");
}

void emit_statements(const EmitCtx& ctx, const KernelPlan& plan,
                     std::string& out, int indent_sp) {
  const std::string pad(static_cast<std::size_t>(indent_sp), ' ');
  const int stream_iter =
      ctx.streaming ? plan.dims - 1 - plan.config.stream_axis : -1;
  for (const auto& stage : plan.stages) {
    std::vector<ir::Stmt> stmts = stage.stmts;
    if (plan.retimed) {
      stmts = transform::try_retime(stage.stmts, stream_iter).stmts;
    }
    for (const auto& st : stmts) {
      if (st.declares_local) {
        out += str_cat(pad, "double ", st.lhs_name, " = ",
                       emit_expr(ctx, *st.rhs), ";\n");
        continue;
      }
      const std::string lhs = str_cat(
          st.lhs_name, "[",
          linear_index(*ctx.prog, st.lhs_name, st.lhs_indices,
                       ctx.prog->iterators),
          "]");
      out += str_cat(pad, lhs, st.accumulate ? " += " : " = ",
                     emit_expr(ctx, *st.rhs), ";\n");
    }
  }
}

std::string emit_spatial_kernel(const ir::Program& prog,
                                const KernelPlan& plan) {
  EmitCtx ctx{&prog, &plan, /*streaming=*/false, -1};
  const auto& cfg = plan.config;
  std::string k;
  k += str_cat("__global__ void ", plan.name, "_kernel(",
               kernel_params(prog, plan), ") {\n");
  // Block origin and thread coordinates.
  for (int axis = 0; axis < plan.dims; ++axis) {
    const char* it = kIterNames[axis];
    const char* bdim = axis == 0 ? "x" : (axis == 1 ? "y" : "z");
    k += str_cat("  const int ", it, "0 = blockIdx.", bdim, " * ",
                 plan.tile_extent(axis), ";\n");
    k += str_cat("  const int ", it, " = ", it, "0 + threadIdx.", bdim,
                 cfg.unroll[static_cast<std::size_t>(axis)] > 1
                     ? str_cat(" * ", cfg.unroll[static_cast<std::size_t>(
                                          axis)])
                     : "",
                 ";\n");
  }
  // Shared tiles.
  bool any_shared = false;
  for (const auto& [name, pl] : plan.placement) {
    if (pl.space != ir::MemSpace::Shared) continue;
    if (std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                  name) != plan.internal_arrays.end()) {
      continue;  // fused intermediates get their own buffers below
    }
    any_shared = true;
    const auto eh = plan.eff_halo.count(name)
                        ? plan.eff_halo.at(name)
                        : std::array<int, 3>{0, 0, 0};
    std::string dims;
    for (int axis = plan.dims - 1; axis >= 0; --axis) {
      dims += str_cat("[",
                      plan.tile_extent(axis) +
                          2 * eh[static_cast<std::size_t>(axis)],
                      "]");
    }
    k += str_cat("  __shared__ double ", name, "_shm", dims, ";\n");
  }
  if (any_shared) {
    k += "  // cooperative tile load: threads stride over tile + halo\n";
    for (const auto& [name, pl] : plan.placement) {
      if (pl.space != ir::MemSpace::Shared) continue;
      if (std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                    name) != plan.internal_arrays.end()) {
        continue;
      }
      const auto eh = plan.eff_halo.count(name)
                          ? plan.eff_halo.at(name)
                          : std::array<int, 3>{0, 0, 0};
      std::string loops, idx_sh, idx_g, close;
      int depth = 1;
      for (int axis = plan.dims - 1; axis >= 0; --axis) {
        const char* it = kIterNames[axis];
        const std::int64_t ext =
            plan.tile_extent(axis) + 2 * eh[static_cast<std::size_t>(axis)];
        const char* bdim = axis == 0 ? "x" : (axis == 1 ? "y" : "z");
        loops += str_cat(std::string(static_cast<std::size_t>(depth) * 2,
                                     ' '),
                         "for (int l", it, " = threadIdx.", bdim, "; l", it,
                         " < ", ext, "; l", it, " += blockDim.", bdim,
                         ") {\n");
        idx_sh += str_cat("[l", it, "]");
        close = std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                "}\n" + close;
        ++depth;
      }
      // Global index: clamp(origin - halo + l, 0, DIM-1) per axis.
      std::string gidx;
      for (int axis = plan.dims - 1; axis >= 0; --axis) {
        const char* it = kIterNames[axis];
        const std::string term =
            str_cat("min(max(", it, "0 - ",
                    eh[static_cast<std::size_t>(axis)], " + l", it,
                    ", 0), ", kDimNames[axis], "-1)");
        gidx = gidx.empty()
                   ? "(" + term + ")"
                   : str_cat("(", gidx, "*", kDimNames[axis], " + ", term,
                             ")");
      }
      k += loops;
      k += str_cat(std::string(static_cast<std::size_t>(depth) * 2, ' '),
                   name, "_shm", idx_sh, " = ", name, "[", gidx, "];\n");
      k += close;
    }
    k += "  __syncthreads();\n";
  }
  k += str_cat("  if (", guard_condition(plan), ") {\n");
  // Unroll loops.
  int depth = 2;
  for (int axis = plan.dims - 1; axis >= 0; --axis) {
    const int u = cfg.unroll[static_cast<std::size_t>(axis)];
    if (u <= 1) continue;
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    k += str_cat(pad, "#pragma unroll\n", pad, "for (int u", kIterNames[axis],
                 " = 0; u", kIterNames[axis], " < ", u, "; ++u",
                 kIterNames[axis],
                 cfg.unroll_strategy == UnrollStrategy::Blocked
                     ? ") {  // blocked distribution\n"
                     : ") {  // cyclic distribution\n");
    ++depth;
  }
  emit_statements(ctx, plan, k, depth * 2);
  for (int axis = 0; axis < plan.dims; ++axis) {
    if (cfg.unroll[static_cast<std::size_t>(axis)] > 1) {
      --depth;
      k += std::string(static_cast<std::size_t>(depth) * 2, ' ') + "}\n";
    }
  }
  k += "  }\n}\n";
  return k;
}

std::string emit_streaming_kernel(const ir::Program& prog,
                                  const KernelPlan& plan) {
  const int stream_iter = plan.dims - 1 - plan.config.stream_axis;
  EmitCtx ctx{&prog, &plan, /*streaming=*/true, stream_iter};
  const auto& cfg = plan.config;
  const char* sweep_it = prog.iterators[static_cast<std::size_t>(
                                            stream_iter)]
                             .c_str();
  const char* sweep_dim = kDimNames[plan.dims - 1];

  std::string k;
  k += str_cat("__global__ void ", plan.name, "_kernel(",
               kernel_params(prog, plan), ") {\n");
  for (int axis = 0; axis < plan.dims - 1; ++axis) {
    const char* it = kIterNames[axis];
    const char* bdim = axis == 0 ? "x" : "y";
    k += str_cat("  const int ", it, "0 = blockIdx.", bdim, " * ",
                 plan.tile_extent(axis), ";\n");
    k += str_cat("  const int ", it, " = ", it, "0 + threadIdx.", bdim,
                 ";\n");
  }
  if (cfg.tiling == TilingScheme::StreamConcurrent) {
    k += str_cat("  const int ", sweep_it, "_lo = blockIdx.z * ",
                 cfg.stream_chunk, ";\n  const int ", sweep_it,
                 "_hi = min(", sweep_it, "_lo + ", cfg.stream_chunk, ", ",
                 sweep_dim, ");\n");
  }

  // Plane buffers and register planes (Listing 2).
  const std::int64_t rz = plan.radius[static_cast<std::size_t>(plan.dims - 1)];
  for (const auto& [name, pl] : plan.placement) {
    if (pl.space != ir::MemSpace::Shared && pl.space != ir::MemSpace::Reg) {
      continue;
    }
    const auto eh = plan.eff_halo.count(name)
                        ? plan.eff_halo.at(name)
                        : std::array<int, 3>{0, 0, 0};
    if (pl.space == ir::MemSpace::Shared) {
      std::string dims;
      for (int axis = plan.dims - 2; axis >= 0; --axis) {
        dims += str_cat("[", plan.tile_extent(axis) +
                                 2 * eh[static_cast<std::size_t>(axis)],
                        "]");
      }
      k += str_cat("  __shared__ double ", name, "_shm_c0", dims, ";\n");
    }
    if (!plan.retimed) {
      const int arz = eh[static_cast<std::size_t>(plan.dims - 1)];
      for (int o = 1; o <= arz; ++o) {
        k += str_cat("  double ", name, "_reg_m", o, ", ", name, "_reg_p",
                     o, ";\n");
      }
      if (cfg.prefetch && arz > 0) {
        k += str_cat("  double ", name, "_pref;  // prefetch register\n");
      }
    }
  }
  if (plan.retimed) {
    for (const auto& out : plan.info.outputs) {
      k += str_cat("  double ", out, "_acc[", 2 * rz + 1,
                   "];  // retimed accumulators\n");
    }
  }

  // Prologue: fill the shared center plane and the +/- register planes
  // for the first sweep position (Listing 2 lines 1-3).
  for (const auto& [name, pl] : plan.placement) {
    if (pl.space != ir::MemSpace::Shared && pl.space != ir::MemSpace::Reg) {
      continue;
    }
    const auto eh = plan.eff_halo.count(name)
                        ? plan.eff_halo.at(name)
                        : std::array<int, 3>{0, 0, 0};
    const int arz = plan.retimed
                        ? 0
                        : eh[static_cast<std::size_t>(plan.dims - 1)];
    if (pl.space == ir::MemSpace::Shared) {
      k += str_cat("  ", name, "_shm_c0[j-j0+", eh[1], "][i-i0+", eh[0],
                   "] = ", name, "[load_index(", rz, ", j, i)];\n");
    }
    for (int o = 1; o <= arz; ++o) {
      k += str_cat("  ", name, "_reg_m", o, " = ", name, "[load_index(",
                   rz, " - ", o, ", j, i)];\n");
      k += str_cat("  ", name, "_reg_p", o, " = ", name, "[load_index(",
                   rz, " + ", o, ", j, i)];\n");
    }
  }
  if (cfg.tiling == TilingScheme::StreamConcurrent) {
    k += str_cat("  for (int ", sweep_it, " = ", sweep_it, "_lo; ", sweep_it,
                 " < ", sweep_it, "_hi; ++", sweep_it, ") {\n");
  } else {
    k += str_cat("  for (int ", sweep_it, " = ", rz, "; ", sweep_it, " < ",
                 sweep_dim, " - ", rz, "; ++", sweep_it, ") {\n");
  }
  k += "    __syncthreads();\n";
  if (cfg.prefetch) {
    k += str_cat("    // prefetch next plane while computing this one\n",
                 "    issue_prefetch_loads(", sweep_it, " + ", rz + 1,
                 ");\n");
  }
  k += str_cat("    if (", guard_condition(plan), ") {\n");
  emit_statements(ctx, plan, k, 6);
  k += "    }\n    __syncthreads();\n";
  k += "    // rotate register planes and refill the shared plane\n";
  for (const auto& [name, pl] : plan.placement) {
    if (pl.space != ir::MemSpace::Shared || plan.retimed) continue;
    const auto eh = plan.eff_halo.count(name)
                        ? plan.eff_halo.at(name)
                        : std::array<int, 3>{0, 0, 0};
    if (eh[static_cast<std::size_t>(plan.dims - 1)] == 0) continue;
    const std::string ctr =
        str_cat("[j-j0+", eh[1], "][i-i0+", eh[0], "]");
    k += str_cat("    ", name, "_reg_m1 = ", name, "_shm_c0", ctr,
                 ";\n    ", name, "_shm_c0", ctr, " = ",
                 name, "_reg_p1;\n    ", name, "_reg_p1 = ",
                 cfg.prefetch ? str_cat(name, "_pref")
                              : str_cat(name, "[load_index(", sweep_it,
                                        " + ", rz + 1, ")]"),
                 ";\n");
  }
  k += "  }\n}\n";
  return k;
}

}  // namespace

std::string CudaSource::full() const {
  return "// generated by ARTEMIS\n#include <cuda_runtime.h>\n#include "
         "<math.h>\n\n" +
         kernel + "\n" + host;
}

CudaSource emit_cuda(const ir::Program& prog, const KernelPlan& plan) {
  CudaSource src;
  src.kernel = plan.config.tiling == TilingScheme::Spatial3D
                   ? emit_spatial_kernel(prog, plan)
                   : emit_streaming_kernel(prog, plan);

  // Host launcher.
  std::string h;
  h += str_cat("void launch_", plan.name, "(/* host pointers */) {\n");
  for (const auto& name : prog.copyin) {
    if (prog.find_array(name)) {
      h += str_cat("  cudaMemcpy(d_", name, ", h_", name,
                   ", bytes_of(", name, "), cudaMemcpyHostToDevice);\n");
    }
  }
  std::int64_t gx = 1, gy = 1, gz = 1;
  {
    auto ceil_div = [](std::int64_t a, std::int64_t b) {
      return (a + b - 1) / b;
    };
    gx = ceil_div(plan.domain.x, plan.tile_extent(0));
    if (plan.dims >= 2) gy = ceil_div(plan.domain.y, plan.tile_extent(1));
    if (plan.dims >= 3) {
      if (plan.config.tiling == TilingScheme::StreamSerial) {
        gz = 1;
      } else if (plan.config.tiling == TilingScheme::StreamConcurrent) {
        gz = ceil_div(plan.domain.z, plan.config.stream_chunk);
      } else {
        gz = ceil_div(plan.domain.z, plan.tile_extent(2));
      }
    }
  }
  h += str_cat("  dim3 grid(", gx, ", ", gy, ", ", gz, ");\n");
  h += str_cat("  dim3 block(", plan.config.block[0], ", ",
               plan.config.block[1], ", ",
               plan.config.tiling == TilingScheme::Spatial3D
                   ? plan.config.block[2]
                   : 1,
               ");\n");
  std::vector<std::string> args;
  for (const auto& [name, pl] : plan.placement) {
    (void)pl;
    args.push_back("d_" + name);
  }
  for (const auto& s : plan.info.scalars_read) args.push_back(s);
  for (int axis = plan.dims - 1; axis >= 0; --axis) {
    args.push_back(kDimNames[axis]);
  }
  h += str_cat("  ", plan.name, "_kernel<<<grid, block>>>(", join(args, ", "),
               ");\n");
  for (const auto& name : prog.copyout) {
    h += str_cat("  cudaMemcpy(h_", name, ", d_", name, ", bytes_of(", name,
                 "), cudaMemcpyDeviceToHost);\n");
  }
  h += "}\n";
  src.host = h;
  return src;
}

}  // namespace artemis::codegen
