#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "artemis/codegen/plan.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/executor.hpp"

namespace artemis::metrics {

/// --- measured execution metrics ---------------------------------------------
///
/// The analytic gpumodel predicts traffic from plan geometry; this module
/// measures it. execute_plan's counting mode (sim::PlanTrace) records the
/// per-stage global line streams and interior/rim counters; measure_plan
/// replays those streams through gpumodel's set-associative CacheSim to
/// turn them into working-set sizes, per-level byte traffic, redundant-load
/// fractions and arithmetic intensity — the observed side of the
/// model-vs-measured comparator (compare.hpp).

/// Measured memory/compute metrics for one stage of a plan (or the plan
/// aggregate). All byte counts are for one execution over the plan domain.
struct StageMetrics {
  std::string name;

  // Point counts, split by block class (interior = guard-free fast path,
  // rim = boundary points with full checks). Computed includes
  // overlapped-tiling recompute.
  std::int64_t interior_points = 0;
  std::int64_t rim_points = 0;
  std::int64_t skipped_points = 0;

  // FLOPs actually executed (flops_per_point x computed points; the same
  // convention as ir::flop_count, so directly comparable to the model).
  std::int64_t flops = 0;
  std::int64_t interior_flops = 0;
  std::int64_t rim_flops = 0;

  // Element-granular access counts.
  std::int64_t global_read_elems = 0;
  std::int64_t global_write_elems = 0;
  std::int64_t scratch_read_elems = 0;
  std::int64_t scratch_write_elems = 0;

  // Line-granular global traffic (post intra-warp coalescing).
  std::int64_t read_line_requests = 0;
  std::int64_t write_line_requests = 0;
  std::int64_t unique_read_lines = 0;
  std::int64_t unique_write_lines = 0;
  std::int64_t unique_lines = 0;  ///< union of read and write lines

  /// All global-space load transactions (hits + misses), the measured
  /// analogue of the model's tex_bytes.
  std::int64_t tex_bytes = 0;
  /// L2 read-miss fill traffic from the cache replay.
  std::int64_t dram_read_bytes = 0;
  /// Dirty-line write-back traffic: unique written lines x line size.
  std::int64_t dram_write_bytes = 0;
  /// Shared-memory stand-in traffic: scratch element accesses x 8.
  std::int64_t shm_bytes = 0;
  /// Unique lines touched x line size (the stage's global footprint).
  std::int64_t working_set_bytes = 0;

  double l2_hit_rate = 0;
  /// Fraction of line requests whose line had already been loaded:
  /// 1 - unique_read_lines / read_line_requests (0 when no reads).
  double redundant_load_fraction = 0;

  std::int64_t computed_points() const { return interior_points + rim_points; }
  std::int64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  double oi_dram() const {
    return dram_bytes() > 0 ? static_cast<double>(flops) / dram_bytes() : 0.0;
  }
  double oi_tex() const {
    return tex_bytes > 0 ? static_cast<double>(flops) / tex_bytes : 0.0;
  }
};

/// Measured per-array footprint over the whole plan execution.
struct ArrayMetrics {
  std::string name;
  std::int64_t working_set_bytes = 0;
  std::int64_t read_line_requests = 0;
  std::int64_t write_line_requests = 0;
};

/// Measured metrics for one full plan execution.
struct PlanMetrics {
  int line_bytes = 32;
  std::int64_t l2_capacity_bytes = 0;  ///< the replayed cache's capacity
  std::vector<StageMetrics> stages;    ///< one per plan stage
  /// Plan aggregate: element counters and FLOPs summed, the cache replayed
  /// over the concatenated stage streams (plus materialized write-backs),
  /// uniqueness over the union of all lines.
  StageMetrics totals;
  std::vector<ArrayMetrics> arrays;
  sim::ExecCounters exec;  ///< raw executor counters of the measured run
};

/// Execute `plan` over `gs` in counting mode and derive measured metrics.
/// The grids end up bit-identical to a plain execute_plan; overhead is
/// bounded by bench/metrics_overhead (<2x plain bytecode execution).
/// `base` seeds the execution options (jobs, serial); its engine must be
/// (or is forced to) the bytecode engine and its hook must be empty.
PlanMetrics measure_plan(const codegen::KernelPlan& plan, sim::GridSet& gs,
                         const gpumodel::DeviceSpec& dev,
                         const sim::ExecOptions& base = {});

}  // namespace artemis::metrics
