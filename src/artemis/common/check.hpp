#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace artemis {

/// Base class for all errors raised by the ARTEMIS library. Carries a
/// human-readable message; subsystems derive from it so callers can
/// discriminate (ParseError, SemanticError, PlanError, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the DSL frontend on malformed input.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int col)
      : Error(format(what, line, col)), line_(line), col_(col) {}

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  static std::string format(const std::string& what, int line, int col) {
    std::ostringstream os;
    os << "parse error at " << line << ":" << col << ": " << what;
    return os.str();
  }

  int line_;
  int col_;
};

/// Raised when a syntactically valid program violates semantic rules
/// (undeclared arrays, non-affine indices, dimensionality mismatches, ...).
class SemanticError : public Error {
 public:
  using Error::Error;
};

/// Raised when a kernel plan cannot be realized on the target device
/// (shared memory over capacity, illegal block shape, ...).
class PlanError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace artemis

/// Internal invariant check: active in all build types, throws artemis::Error.
#define ARTEMIS_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::artemis::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ARTEMIS_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::artemis::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                      os_.str());                        \
    }                                                                    \
  } while (0)
