// AVX-512F tier: 8-wide double lanes. Compiled (alone) with -mavx512f;
// anonymous-namespace structure as in exec_avx2.cpp. Min/Max use
// mask-compare + blend to match scalar std::min/std::max on NaN and ±0;
// sign-bit ops go through the integer domain because _mm512_xor_pd
// requires AVX512DQ, which plain -mavx512f does not provide.

#include "artemis/sim/native/native.hpp"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

namespace artemis::sim::native {
namespace {

struct Backend {
  static constexpr std::int64_t kWidth = 8;
  using Vec = __m512d;
  static Vec broadcast(double v) { return _mm512_set1_pd(v); }
  static Vec loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, Vec v) { _mm512_storeu_pd(p, v); }
  static Vec add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm512_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) { return _mm512_div_pd(a, b); }
  static Vec min_(Vec a, Vec b) {
    return _mm512_mask_blend_pd(_mm512_cmp_pd_mask(b, a, _CMP_LT_OQ), a, b);
  }
  static Vec max_(Vec a, Vec b) {
    return _mm512_mask_blend_pd(_mm512_cmp_pd_mask(a, b, _CMP_LT_OQ), a, b);
  }
  static Vec neg(Vec a) {
    return _mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(a),
        _mm512_castpd_si512(_mm512_set1_pd(-0.0))));
  }
  static Vec fabs_(Vec a) {
    return _mm512_castsi512_pd(_mm512_andnot_si512(
        _mm512_castpd_si512(_mm512_set1_pd(-0.0)),
        _mm512_castpd_si512(a)));
  }
  static Vec sqrt_(Vec a) { return _mm512_sqrt_pd(a); }
  static Vec exp_(Vec a) {
    alignas(64) double b[8];
    _mm512_store_pd(b, a);
    for (double& x : b) x = std::exp(x);
    return _mm512_load_pd(b);
  }
  static Vec log_(Vec a) {
    alignas(64) double b[8];
    _mm512_store_pd(b, a);
    for (double& x : b) x = std::log(x);
    return _mm512_load_pd(b);
  }
  static Vec pow_(Vec a, Vec b) {
    alignas(64) double ba[8], bb[8];
    _mm512_store_pd(ba, a);
    _mm512_store_pd(bb, b);
    for (int l = 0; l < 8; ++l) ba[l] = std::pow(ba[l], bb[l]);
    return _mm512_load_pd(ba);
  }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }
  static Vec fmsub(Vec a, Vec b, Vec c) { return _mm512_fmsub_pd(a, b, c); }
  static Vec fnmadd(Vec a, Vec b, Vec c) {
    return _mm512_fnmadd_pd(a, b, c);
  }
};

#include "artemis/sim/native/exec_common.inl"

}  // namespace

void run_box_avx512(const LinearProgram& lp, const ArrayView* views,
                    const double* scalars, const BcRegion& box,
                    const BcRegion& commit, bool drop_outside_commit) {
  run_box_impl<Backend>(lp, views, scalars, box, commit,
                        drop_outside_commit);
}

}  // namespace artemis::sim::native

#else  // non-x86 or AVX-512F not enabled for this TU: degrade to scalar.

namespace artemis::sim::native {

void run_box_avx512(const LinearProgram& lp, const ArrayView* views,
                    const double* scalars, const BcRegion& box,
                    const BcRegion& commit, bool drop_outside_commit) {
  run_box_scalar(lp, views, scalars, box, commit, drop_outside_commit);
}

}  // namespace artemis::sim::native

#endif
