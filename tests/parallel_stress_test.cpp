// Concurrency stress layer for the parallel tuner's building blocks: the
// work-stealing TaskPool itself, and the shared state the evaluation
// shards hammer — tuning cache, write-ahead journal, candidate runner,
// telemetry counters. Run under ThreadSanitizer in CI; the assertions
// here pin the *semantic* invariants (nothing lost, nothing double
// counted, order-independent quarantine, crash-resume with jobs > 1)
// while TSAN pins the memory model.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/robust/candidate_runner.hpp"
#include "artemis/robust/errors.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis {
namespace {

// ---- TaskPool ------------------------------------------------------------

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  TaskPool pool(8);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::int64_t> sum{0};
  pool.for_each(kN, [&](std::int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, PoolIsReusableAcrossManyForEachCalls) {
  // One pool spans both tuning stages; workers park between jobs rather
  // than re-spawning. Hammer that transition.
  TaskPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_each(round, [&](std::int64_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  std::int64_t want = 0;
  for (int round = 0; round < 50; ++round) {
    want += static_cast<std::int64_t>(round) * (round + 1) / 2;
  }
  EXPECT_EQ(sum.load(), want);
}

TEST(TaskPoolTest, NestedForEachRunsInlineWithoutDeadlock) {
  TaskPool outer(4);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> saw_inside{0};
  outer.for_each(8, [&](std::int64_t) {
    if (TaskPool::inside_worker()) saw_inside.fetch_add(1);
    // A nested pool must degrade to inline-serial execution: one level
    // of parallelism wins, and the inner loop may not block on `outer`.
    TaskPool inner(4);
    inner.for_each(100, [&](std::int64_t i) {
      EXPECT_TRUE(TaskPool::inside_worker());
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 8 * (100 * 99 / 2));
  EXPECT_EQ(saw_inside.load(), 8);
  EXPECT_FALSE(TaskPool::inside_worker());
}

TEST(TaskPoolTest, FirstExceptionPropagatesAndPoolSurvives) {
  TaskPool pool(4);
  EXPECT_THROW(
      pool.for_each(1000,
                    [&](std::int64_t i) {
                      if (i == 437) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // The pool must still be fully usable after a failed job.
  std::atomic<std::int64_t> sum{0};
  pool.for_each(100, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(TaskPoolTest, ParallelForCoversRange) {
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ---- shared tuning state under concurrent shards -------------------------

TEST(ParallelStressTest, CacheJournalRunnerSurviveConcurrentHammer) {
  const std::string path = "/tmp/artemis_parallel_stress_hammer.wal";
  std::remove(path.c_str());

  robust::FaultSpec spec;
  spec.crash_p = 0.3;
  spec.timeout_p = 0.0;
  spec.seed = 17;
  robust::install_fault_plan(spec);

  autotune::TuningCache cache;
  robust::TuningJournal journal;
  ASSERT_EQ(journal.open(path, "hammer", /*resume=*/false).status,
            robust::JournalLoadResult::Status::Fresh);
  robust::RunnerOptions ropts;
  ropts.max_attempts = 2;
  ropts.quarantine_threshold = 2;
  robust::CandidateRunner runner(ropts);

  constexpr int kTasks = 512;
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  TaskPool pool(8);
  pool.for_each(kTasks, [&](std::int64_t i) {
    // 64 distinct keys, each hit by ~8 tasks concurrently: maximum
    // contention on the per-key failure ledger and the cache slots.
    const std::string key = str_cat("cand-", i % 64);
    const robust::RunOutcome out =
        runner.run("stress.eval", key, [&]() {
          gpumodel::KernelEval eval;
          eval.time_s = 1e-3 + static_cast<double>(i % 64) * 1e-6;
          return eval;
        });
    if (out.ok()) {
      ok.fetch_add(1, std::memory_order_relaxed);
      autotune::CacheEntry entry;
      entry.time_s = out.time_s;
      cache.put(key, entry);
      journal.record(key, "ok", out.time_s, 0.0);
      const auto back = cache.get(key);
      EXPECT_TRUE(back.has_value());
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
      journal.record(key, robust::run_status_name(out.status), 0, 0);
    }
  });
  robust::clear_fault_plan();

  // Nothing lost: every task recorded exactly one journal line and was
  // counted exactly once.
  EXPECT_EQ(ok.load() + failed.load(), kTasks);
  EXPECT_EQ(journal.recorded(), static_cast<std::size_t>(kTasks));
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(ok.load(), 0);
  // The journal file itself must hold header + kTasks intact lines.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, kTasks + 1);
  std::remove(path.c_str());
}

TEST(ParallelStressTest, QuarantineMembershipIsOrderIndependent) {
  // Feed the same failing keys to two runners in opposite orders; the
  // quarantine sets must agree, because membership only depends on the
  // per-key failure count, never on global evaluation order.
  const auto run_keys = [](const std::vector<std::string>& keys) {
    robust::RunnerOptions opts;
    opts.max_attempts = 1;
    opts.quarantine_threshold = 2;
    // A (generous) deadline arms the resilience path; without it run()
    // takes the pre-resilience fast path, which only catches PlanError.
    opts.deadline_ms = 60000;
    robust::CandidateRunner runner(opts);
    for (int round = 0; round < 2; ++round) {
      for (const std::string& key : keys) {
        (void)runner.run("order.eval", key, [&]() -> gpumodel::KernelEval {
          if (key.find("bad") != std::string::npos) {
            throw robust::EvalCrash("injected");
          }
          return {};
        });
      }
    }
    std::set<std::string> quarantined;
    for (const std::string& key : keys) {
      if (runner.is_quarantined(key)) quarantined.insert(key);
    }
    return quarantined;
  };

  std::vector<std::string> forward = {"bad-a", "good-b", "bad-c",
                                      "good-d", "bad-e"};
  std::vector<std::string> reversed(forward.rbegin(), forward.rend());
  const auto a = run_keys(forward);
  const auto b = run_keys(reversed);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::set<std::string>{"bad-a", "bad-c", "bad-e"}));
}

TEST(ParallelStressTest, FaultCountersAreJobsInvariant) {
  // The fault harness's decision counters are relaxed atomics hit from
  // every shard; for a fixed candidate set the totals must not depend on
  // thread interleaving (decisions are a pure hash of the key).
  const auto count_crashes = [](int jobs) {
    robust::FaultSpec spec;
    spec.crash_p = 0.5;
    spec.seed = 23;
    robust::install_fault_plan(spec);
    TaskPool pool(jobs);
    pool.for_each(256, [&](std::int64_t i) {
      try {
        robust::fault_point("counter.eval", str_cat("key-", i), 0);
      } catch (const robust::EvalCrash&) {
      }
    });
    const std::uint64_t crashes =
        robust::fault_counters().crashes.load(std::memory_order_relaxed);
    robust::clear_fault_plan();
    return crashes;
  };
  const std::uint64_t serial = count_crashes(1);
  EXPECT_GT(serial, 0u);
  EXPECT_EQ(count_crashes(8), serial);
}

// ---- crash-resume with parallel jobs -------------------------------------

class ParallelResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    robust::clear_fault_plan();
    std::remove(path_.c_str());
  }
  void TearDown() override {
    robust::clear_fault_plan();
    std::remove(path_.c_str());
  }

  std::string path_ = "/tmp/artemis_parallel_stress_resume.wal";
};

TEST_F(ParallelResumeTest, TornTailJournalResumesUnderParallelTuning) {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;
  Rng rng(0x51);
  stencils::RandomStencilOptions sopts;
  sopts.dims = 3;
  const ir::Program prog = stencils::random_program(rng, sopts);
  const auto factory = [&](const codegen::KernelConfig& cfg) {
    return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  };

  autotune::TuneOptions topts;
  topts.max_block = 16;
  topts.max_unroll_bandwidth = 2;
  topts.register_budgets = {64};

  // First run: journaled, parallel.
  autotune::TuneResult first;
  {
    robust::TuningJournal journal;
    journal.open(path_, "resume-stress", /*resume=*/false);
    topts.journal = &journal;
    topts.jobs = 4;
    first = autotune::hierarchical_tune(factory, {}, dev, params, topts);
    EXPECT_GT(journal.recorded(), 0u);
  }

  // Simulate a crash mid-append: a torn final line with no newline.
  {
    std::ofstream out(path_, std::ios::app);
    out << "ok\t0.0012";  // no trailing fields, no newline
  }

  // Resume with jobs > 1: the torn tail is healed, intact records are
  // replayed, and the plan matches the original run exactly.
  {
    robust::TuningJournal journal;
    const auto load = journal.open(path_, "resume-stress", /*resume=*/true);
    ASSERT_EQ(load.status, robust::JournalLoadResult::Status::Replayed);
    EXPECT_TRUE(load.torn_tail);
    EXPECT_GT(load.replayed, 0u);
    topts.journal = &journal;
    topts.jobs = 4;
    const autotune::TuneResult again =
        autotune::hierarchical_tune(factory, {}, dev, params, topts);
    EXPECT_GT(again.journal_hits, 0);
    EXPECT_EQ(autotune::serialize_config(again.best.config),
              autotune::serialize_config(first.best.config));
    EXPECT_EQ(again.best.time_s, first.best.time_s);
  }
}

// ---- telemetry counter identities under parallel tuning ------------------

TEST(ParallelStressTest, EnumeratedEqualsEvaluatedPlusInfeasible) {
  // The run-report invariant (telemetry/report.cpp) must survive the
  // parallel commit path: every enumerated candidate is either evaluated
  // or rejected as infeasible, exactly once, at any jobs value.
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;
  Rng rng(0x77);
  stencils::RandomStencilOptions sopts;
  sopts.dims = 3;
  const ir::Program prog = stencils::random_program(rng, sopts);
  const auto factory = [&](const codegen::KernelConfig& cfg) {
    return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  };

  auto& collector = telemetry::Collector::global();
  collector.enable();
  collector.clear();

  autotune::TuneOptions topts;
  topts.max_block = 16;
  topts.max_unroll_bandwidth = 2;
  topts.register_budgets = {64, 128};
  topts.jobs = 8;
  const autotune::TuneResult r =
      autotune::hierarchical_tune(factory, {}, dev, params, topts);

  const auto counters = collector.counters();
  collector.disable();
  const auto counter = [&](const char* name) -> std::int64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  EXPECT_GT(counter("tuner.enumerated"), 0);
  EXPECT_EQ(counter("tuner.enumerated"),
            counter("tuner.evaluated") + counter("tuner.infeasible"));
  EXPECT_EQ(counter("tuner.evaluated"),
            static_cast<std::int64_t>(r.total_evaluated()));
  // The parallel run actually used the pool.
  EXPECT_GT(counter("parallel.pools"), 0);
  EXPECT_GT(counter("parallel.tasks"), 0);
}

}  // namespace
}  // namespace artemis
