#pragma once

#include <cstdint>

#include "artemis/codegen/plan.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/gpumodel/occupancy.hpp"
#include "artemis/gpumodel/registers.hpp"

namespace artemis::gpumodel {

/// Calibration constants of the analytic model. Each constant models one
/// physical mechanism; defaults were calibrated so the paper's qualitative
/// results reproduce (see DESIGN.md section 5 and EXPERIMENTS.md).
struct ModelParams {
  /// Fraction of inter-block halo re-reads served by L2 under spatial
  /// tiling (neighboring blocks are co-scheduled, so their overlapping
  /// halos hit the cache).
  double spatial_halo_l2_hit = 0.8;
  /// Under streaming, neighboring blocks advance along the swept axis out
  /// of phase, so halo re-reads almost never coincide in L2.
  double stream_halo_l2_hit = 0.05;
  /// Occupancy needed to saturate DRAM / tex / shm bandwidth and compute
  /// issue (memory-level parallelism ramps).
  double dram_sat_occ = 0.25;
  double tex_sat_occ = 0.25;
  double shm_sat_occ = 0.40;
  double compute_sat_conc = 0.55;
  /// ILP contributed per extra unrolled output (blocked / cyclic).
  double ilp_per_unroll_blocked = 0.35;
  double ilp_per_unroll_cyclic = 0.15;
  /// Compute/memory overlap: spatial kernels overlap almost fully; a
  /// streaming loop without prefetch serializes load and compute phases at
  /// each __syncthreads (Section III-A4); prefetching restores overlap.
  double overlap_spatial = 0.95;
  double overlap_stream_nopf = 0.55;
  double overlap_stream_pf = 0.92;
  /// Extra tex sectors fetched for unaligned halo rows under the Output
  /// perspective (non-coalesced boundary loads, Section III-B3).
  double output_persp_halo_waste = 1.6;
  double mixed_persp_halo_waste = 1.05;
  /// Fraction of spill traffic that misses L2 and reaches DRAM.
  double spill_dram_fraction = 0.5;
  /// Local-memory spill slots are per-thread strided, so each spill
  /// transaction drags whole sectors: multiplier on spill traffic.
  double spill_sector_waste = 3.0;
  /// Issue-slot drag per spilled register (dependent ld/st chains).
  double spill_compute_drag = 1.0 / 96.0;
  /// Kernel launch overhead (seconds); matters for fission/fusion counts.
  double launch_overhead_s = 4e-6;
};

/// nvprof-style counters for one kernel execution over the full domain.
struct Counters {
  std::int64_t flops = 0;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
  std::int64_t tex_bytes = 0;  ///< all global-space load traffic (hits+misses)
  std::int64_t shm_bytes = 0;  ///< shared load + store traffic
  std::int64_t spill_bytes = 0;
  std::int64_t num_blocks = 0;

  std::int64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  double oi_dram() const {
    return dram_bytes() > 0 ? static_cast<double>(flops) / dram_bytes() : 0.0;
  }
  double oi_tex() const {
    return tex_bytes > 0 ? static_cast<double>(flops) / tex_bytes : 0.0;
  }
  double oi_shm() const {
    return shm_bytes > 0 ? static_cast<double>(flops) / shm_bytes : 0.0;
  }
};

/// Which resource bounds the kernel (roofline verdict).
enum class Bound { Dram, Tex, Shm, Compute, Latency };
const char* bound_name(Bound b);

/// Complete evaluation of one kernel plan on a device.
struct KernelEval {
  Counters counters;
  RegisterEstimate regs;
  Occupancy occupancy;

  double t_dram = 0, t_tex = 0, t_shm = 0, t_compute = 0;
  double time_s = 0;     ///< modelled execution time (excl. launch)
  Bound bound = Bound::Latency;
  bool valid = true;     ///< false when the launch cannot run at all
  std::string invalid_reason;

  /// Useful FLOPs (excluding fused recomputation) per second; what the
  /// paper's TFLOPS plots report.
  std::int64_t useful_flops = 0;
  double tflops() const {
    return time_s > 0 ? static_cast<double>(useful_flops) / time_s / 1e12
                      : 0.0;
  }
};

/// Evaluate a kernel plan analytically: derive transaction counts from the
/// plan's tiling geometry and residency map, occupancy from its resource
/// footprint, and execution time from a roofline over DRAM / texture /
/// shared-memory bandwidth and compute with occupancy-dependent
/// efficiency ramps. Deterministic: a pure function of (plan, device,
/// params).
KernelEval evaluate(const codegen::KernelPlan& plan, const DeviceSpec& dev,
                    const ModelParams& params = {});

}  // namespace artemis::gpumodel
