#include "artemis/stencils/random_stencil.hpp"

#include <algorithm>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::stencils {

namespace {

using ir::ExprPtr;
using ir::IndexExpr;

/// Random center-anchored index vector for a `dims`-dimensional array.
std::vector<IndexExpr> random_indices(Rng& rng, int dims, int max_order) {
  std::vector<IndexExpr> idx(static_cast<std::size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    idx[static_cast<std::size_t>(d)].iter = d;
    idx[static_cast<std::size_t>(d)].offset =
        rng.uniform_int(-max_order, max_order);
  }
  return idx;
}

ExprPtr random_leaf(Rng& rng, const std::vector<std::string>& readable,
                    const std::vector<std::string>& scalars,
                    const std::vector<std::string>& locals, int dims,
                    int max_order) {
  const double roll = rng.uniform();
  if (roll < 0.55 || (scalars.empty() && locals.empty())) {
    const auto& arr = readable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(readable.size()) - 1))];
    return ir::array_ref(arr, random_indices(rng, dims, max_order));
  }
  if (roll < 0.75) return ir::number(rng.uniform(0.1, 1.0));
  if (!locals.empty() && rng.coin()) {
    return ir::scalar_ref(locals[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(locals.size()) - 1))]);
  }
  if (!scalars.empty()) {
    return ir::scalar_ref(scalars[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(scalars.size()) - 1))]);
  }
  return ir::number(rng.uniform(0.1, 1.0));
}

ExprPtr random_term(Rng& rng, const std::vector<std::string>& readable,
                    const std::vector<std::string>& scalars,
                    const std::vector<std::string>& locals, int dims,
                    int max_order, bool allow_calls) {
  ExprPtr e = random_leaf(rng, readable, scalars, locals, dims, max_order);
  const int factors = static_cast<int>(rng.uniform_int(0, 2));
  for (int f = 0; f < factors; ++f) {
    e = ir::mul(e,
                random_leaf(rng, readable, scalars, locals, dims, max_order));
  }
  if (allow_calls && rng.coin(0.15)) {
    e = ir::call("fabs", {e});
  }
  if (rng.coin(0.2)) e = ir::unary_neg(e);
  return e;
}

/// Random but always-valid decoration: pragma clauses drawn from the
/// legal grammar (iterator names from the program, power-of-two blocks
/// and unrolls, occupancy from the exactly-printable quarters) and
/// #assign pins restricted to read-only array formals, the combination
/// every planner heuristic must accept.
void decorate_stencil(Rng& rng, const ir::Program& prog,
                      ir::StencilDef& def) {
  const int dims = static_cast<int>(prog.iterators.size());
  const auto random_iter = [&]() {
    return prog.iterators[static_cast<std::size_t>(
        rng.uniform_int(0, dims - 1))];
  };
  if (rng.coin(0.4)) def.pragma.stream_iter = random_iter();
  if (rng.coin(0.6)) {
    const int n = static_cast<int>(rng.uniform_int(1, dims));
    for (int d = 0; d < n; ++d) {
      def.pragma.block.push_back(std::int64_t{1}
                                 << rng.uniform_int(2, 5));  // 4..32
    }
  }
  if (rng.coin(0.4)) {
    def.pragma.unroll[random_iter()] = std::int64_t{1}
                                       << rng.uniform_int(1, 2);  // 2 or 4
  }
  if (rng.coin(0.3)) {
    def.pragma.occupancy = 0.25 * static_cast<double>(rng.uniform_int(1, 4));
  }
  for (const auto& p : def.params) {
    if ((p == "IN" || p == "IN0") && rng.coin(0.4)) {
      def.resources.spaces[p] =
          rng.coin() ? ir::MemSpace::Shared : ir::MemSpace::Global;
    }
  }
}

ExprPtr random_rhs(Rng& rng, const std::vector<std::string>& readable,
                   const std::vector<std::string>& scalars,
                   const std::vector<std::string>& locals, int dims,
                   const RandomStencilOptions& opts) {
  const int terms = static_cast<int>(rng.uniform_int(1, opts.max_terms));
  ExprPtr e = random_term(rng, readable, scalars, locals, dims,
                          opts.max_order, opts.allow_calls);
  for (int t = 1; t < terms; ++t) {
    ExprPtr rhs = random_term(rng, readable, scalars, locals, dims,
                              opts.max_order, opts.allow_calls);
    e = rng.coin() ? ir::add(e, rhs) : ir::sub(e, rhs);
  }
  return e;
}

}  // namespace

ir::Program random_program(Rng& rng, const RandomStencilOptions& opts) {
  ARTEMIS_CHECK(opts.dims >= 1 && opts.dims <= 3);
  ARTEMIS_CHECK(opts.max_stages >= 1);

  ir::Program prog;
  const std::vector<std::string> all_iters = {"k", "j", "i"};
  const std::vector<std::string> all_dims = {"L", "M", "N"};
  for (int d = 0; d < opts.dims; ++d) {
    prog.iterators.push_back(
        all_iters[static_cast<std::size_t>(3 - opts.dims + d)]);
    prog.params.push_back(
        {all_dims[static_cast<std::size_t>(3 - opts.dims + d)], opts.extent});
  }
  std::vector<std::string> dim_names;
  for (const auto& p : prog.params) dim_names.push_back(p.name);

  // Arrays: one external input per stage (some stages share), one output
  // per stage; stage s+1 reads stage s's output.
  const int stages = static_cast<int>(rng.uniform_int(1, opts.max_stages));
  prog.arrays.push_back({"a0", dim_names});
  prog.copyin.push_back("a0");
  prog.scalars.push_back({"c0"});
  prog.scalars.push_back({"c1"});
  prog.copyin.push_back("c0");
  prog.copyin.push_back("c1");
  const std::vector<std::string> scalar_names = {"c0", "c1"};

  std::string prev_out = "a0";
  for (int s = 0; s < stages; ++s) {
    const std::string out = str_cat("v", s);
    prog.arrays.push_back({out, dim_names});

    ir::StencilDef def;
    def.name = str_cat("stage", s);
    def.params = {"OUT", "IN", "c0", "c1"};

    std::vector<std::string> readable = {"IN"};
    // Occasionally also read the original input in later stages.
    if (s > 0 && rng.coin(0.3)) {
      def.params.push_back("IN0");
      readable.push_back("IN0");
    }

    std::vector<std::string> locals;
    const int nlocals = static_cast<int>(rng.uniform_int(0, opts.max_locals));
    for (int l = 0; l < nlocals; ++l) {
      ir::Stmt st;
      st.declares_local = true;
      st.lhs_name = str_cat("t", l);
      st.rhs = rng.coin()
                   ? ir::mul(ir::scalar_ref("c0"), ir::scalar_ref("c1"))
                   : ir::add(ir::scalar_ref("c0"), ir::number(rng.uniform(
                                                       0.1, 0.9)));
      def.stmts.push_back(std::move(st));
      locals.push_back(str_cat("t", l));
    }

    ir::Stmt out_stmt;
    out_stmt.lhs_name = "OUT";
    out_stmt.lhs_indices.resize(static_cast<std::size_t>(opts.dims));
    for (int d = 0; d < opts.dims; ++d) {
      out_stmt.lhs_indices[static_cast<std::size_t>(d)].iter = d;
    }
    out_stmt.rhs = random_rhs(rng, readable, scalar_names, locals, opts.dims,
                              opts);
    def.stmts.push_back(out_stmt);

    if (opts.allow_accumulate && rng.coin(0.3)) {
      ir::Stmt acc = out_stmt;
      acc.accumulate = true;
      acc.rhs = random_rhs(rng, readable, scalar_names, locals, opts.dims,
                           opts);
      def.stmts.push_back(std::move(acc));
    }

    ir::Step step;
    step.kind = ir::Step::Kind::Call;
    step.call.callee = def.name;
    step.call.args = {out, prev_out, "c0", "c1"};
    if (std::find(def.params.begin(), def.params.end(), "IN0") !=
        def.params.end()) {
      step.call.args.push_back("a0");
    }
    prog.stencils.push_back(std::move(def));
    prog.steps.push_back(std::move(step));
    prev_out = out;
  }
  prog.copyout.push_back(prev_out);

  // Ping-pong iteration: v0 and a0 have identical shape, so the single
  // call chain can become `iterate N { stage0(v0, a0, ...); swap; }`
  // with the final state landing back in a0 after an even count.
  if (opts.allow_iterate && stages == 1 && rng.coin(0.4)) {
    ir::Step call = std::move(prog.steps.back());
    prog.steps.pop_back();
    ir::Step swap;
    swap.kind = ir::Step::Kind::Swap;
    swap.swap.a = "v0";
    swap.swap.b = "a0";
    ir::Step it;
    it.kind = ir::Step::Kind::Iterate;
    it.iterations = rng.uniform_int(1, 3) * 2;  // even: 2/4/6
    it.body.push_back(std::move(call));
    it.body.push_back(std::move(swap));
    prog.steps.push_back(std::move(it));
    prog.copyout.back() = "a0";
  }

  if (opts.decorate) {
    for (auto& def : prog.stencils) decorate_stencil(rng, prog, def);
  }

  ir::validate(prog);
  return prog;
}

}  // namespace artemis::stencils
