#include "artemis/gpumodel/device.hpp"

namespace artemis::gpumodel {

DeviceSpec p100() { return DeviceSpec{}; }

DeviceSpec v100() {
  DeviceSpec d;
  d.name = "V100";
  d.num_sms = 80;
  d.shmem_per_sm = 96 * 1024;
  d.shmem_per_block = 96 * 1024;
  d.l2_bytes = 6 * 1024 * 1024;
  d.peak_dp_flops = 7.8e12;
  d.dram_bytes_per_s = 900e9;
  d.tex_bytes_per_s = 2.7e12;
  d.shm_bytes_per_s = 13.8e12;
  return d;
}

DeviceSpec k40() {
  DeviceSpec d;
  d.name = "K40";
  d.num_sms = 15;
  d.max_blocks_per_sm = 16;
  d.shmem_per_sm = 48 * 1024;
  d.shmem_per_block = 48 * 1024;
  d.l2_bytes = 1536 * 1024;
  d.peak_dp_flops = 1.43e12;
  d.dram_bytes_per_s = 288e9;
  d.tex_bytes_per_s = 0.75e12;
  d.shm_bytes_per_s = 2.8e12;
  return d;
}

DeviceSpec a100() {
  DeviceSpec d;
  d.name = "A100";
  d.num_sms = 108;
  d.shmem_per_sm = 164 * 1024;
  d.shmem_per_block = 163 * 1024;  // 164 KiB carve-out minus 1 KiB reserved
  d.l2_bytes = 40 * 1024 * 1024;
  d.peak_dp_flops = 9.7e12;
  d.dram_bytes_per_s = 1555e9;
  d.tex_bytes_per_s = 4.8e12;
  d.shm_bytes_per_s = 19.5e12;
  return d;
}

DeviceSpec h100() {
  DeviceSpec d;
  d.name = "H100";
  d.num_sms = 132;
  d.shmem_per_sm = 228 * 1024;
  d.shmem_per_block = 227 * 1024;  // 228 KiB carve-out minus 1 KiB reserved
  d.l2_bytes = 50 * 1024 * 1024;
  d.peak_dp_flops = 33.5e12;
  d.dram_bytes_per_s = 3350e9;
  d.tex_bytes_per_s = 8.0e12;
  d.shm_bytes_per_s = 33.0e12;
  return d;
}

std::vector<DeviceSpec> device_family() {
  return {k40(), p100(), v100(), a100(), h100()};
}

}  // namespace artemis::gpumodel
