# Empty dependencies file for tuning_cache_test.
# This may be replaced when dependencies are built.
