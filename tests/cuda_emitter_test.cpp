#include <gtest/gtest.h>

#include "artemis/codegen/cuda_emitter.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "test_programs.hpp"

namespace artemis::codegen {
namespace {

class EmitterTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();

  CudaSource emit(const ir::Program& prog, const KernelConfig& cfg,
                  BuildOptions opts = {}) {
    const auto plan =
        build_plan_for_call(prog, last_call(prog), cfg, dev_, opts);
    return emit_cuda(prog, plan);
  }

  static const ir::StencilCall& last_call(const ir::Program& prog) {
    for (auto it = prog.steps.rbegin(); it != prog.steps.rend(); ++it) {
      if (it->kind == ir::Step::Kind::Call) return it->call;
      if (it->kind == ir::Step::Kind::Iterate) {
        return it->body.front().call;
      }
    }
    throw Error("no call");
  }
};

TEST_F(EmitterTest, StreamingKernelHasListing2Shape) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg = config_from_pragma(prog, prog.stencils[0].pragma, 3);
  cfg.prefetch = true;
  const CudaSource src = emit(prog, cfg);

  // Listing 2 structure: shared center plane, +/- register planes, the
  // serial k sweep with barriers and the rotate/load epilogue.
  EXPECT_NE(src.kernel.find("__global__ void jacobi_kernel("),
            std::string::npos);
  // block (32,16) with the pragma's unroll j=2: tile 34 x 34.
  EXPECT_NE(src.kernel.find("__shared__ double in_shm_c0[34][34];"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("double in_reg_m1, in_reg_p1;"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("for (int k = 1; k < L - 1; ++k)"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("__syncthreads();"), std::string::npos);
  EXPECT_NE(src.kernel.find("in_reg_m1 = in_shm_c0[j-j0+1][i-i0+1];"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("in_pref"), std::string::npos);
}

TEST_F(EmitterTest, SpatialKernelHasSharedTileAndGuard) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {8, 8, 4};
  const CudaSource src = emit(prog, cfg);
  EXPECT_NE(src.kernel.find("__shared__ double in_shm[6][10][10];"),
            std::string::npos);
  // Cooperative load loops and halo-shifted local indices.
  EXPECT_NE(src.kernel.find("for (int lk = threadIdx.z; lk < 6;"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("in_shm[k-k0+1][j-j0+1][i-i0+1]"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("if (k >= 1 && k < L - 1 && j >= 1 && j < M - 1 "
                            "&& i >= 1 && i < N - 1)"),
            std::string::npos);
  EXPECT_NE(src.kernel.find("blockIdx.z"), std::string::npos);
}

TEST_F(EmitterTest, GlobalVersionIndexesLinearly) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  BuildOptions opts;
  opts.use_shared_memory = false;
  const CudaSource src = emit(prog, cfg, opts);
  EXPECT_EQ(src.kernel.find("__shared__"), std::string::npos);
  EXPECT_NE(src.kernel.find("in[(((k)*M + (j))*N + (i+1))]"),
            std::string::npos);
}

TEST_F(EmitterTest, UnrolledBodyEmitsPragmaLoops) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.unroll = {2, 2, 1};
  BuildOptions opts;
  opts.use_shared_memory = false;
  const CudaSource src = emit(prog, cfg, opts);
  EXPECT_NE(src.kernel.find("#pragma unroll"), std::string::npos);
  EXPECT_NE(src.kernel.find("blocked distribution"), std::string::npos);
}

TEST_F(EmitterTest, RetimedStreamingEmitsAccumulators) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg = config_from_pragma(prog, prog.stencils[0].pragma, 3);
  cfg.retime = true;
  const auto plan =
      build_plan_for_call(prog, last_call(prog), cfg, dev_);
  ASSERT_TRUE(plan.retimed);
  const CudaSource src = emit_cuda(prog, plan);
  EXPECT_NE(src.kernel.find("retimed accumulators"), std::string::npos);
  // Decomposed accumulation statements appear.
  EXPECT_NE(src.kernel.find("+="), std::string::npos);
}

TEST_F(EmitterTest, HostLauncherHasGridAndCopies) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg = config_from_pragma(prog, prog.stencils[0].pragma, 3);
  const CudaSource src = emit(prog, cfg);
  EXPECT_NE(src.host.find("dim3 grid("), std::string::npos);
  EXPECT_NE(src.host.find("dim3 block(32, 16, 1);"), std::string::npos);
  EXPECT_NE(src.host.find("cudaMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(src.host.find("cudaMemcpy(h_out"), std::string::npos);
  EXPECT_NE(src.host.find("jacobi_kernel<<<grid, block>>>"),
            std::string::npos);
}

TEST_F(EmitterTest, ConcurrentStreamingSweepsChunk) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_axis = 2;
  cfg.stream_chunk = 64;
  cfg.block = {32, 8, 1};
  const CudaSource src = emit(prog, cfg);
  EXPECT_NE(src.kernel.find("k_lo = blockIdx.z * 64"), std::string::npos);
  EXPECT_NE(src.kernel.find("for (int k = k_lo; k < k_hi; ++k)"),
            std::string::npos);
}

TEST_F(EmitterTest, EmitsForEveryBenchmark) {
  // Smoke: every Table I kernel emits non-trivial CUDA in both a global
  // spatial and (where feasible) a streaming shmem version.
  for (const auto& spec : stencils::paper_benchmarks()) {
    const auto prog = stencils::benchmark_program(spec.name, 64);
    KernelConfig cfg;
    cfg.tiling = TilingScheme::StreamSerial;
    cfg.stream_axis = 2;
    cfg.block = {16, 8, 1};
    try {
      const auto src = emit(prog, cfg);
      EXPECT_NE(src.kernel.find("__global__"), std::string::npos)
          << spec.name;
      EXPECT_GT(src.kernel.size(), 200u) << spec.name;
    } catch (const PlanError&) {
      // Capacity-infeasible at this block: acceptable for the biggest
      // kernels; the global version must still emit.
      BuildOptions opts;
      opts.use_shared_memory = false;
      const auto src = emit(prog, cfg, opts);
      EXPECT_NE(src.kernel.find("__global__"), std::string::npos)
          << spec.name;
    }
  }
}

}  // namespace
}  // namespace artemis::codegen
