#pragma once

#include "artemis/ir/analysis.hpp"
#include "artemis/sim/gridset.hpp"

namespace artemis::sim {

/// Execute one bound stencil over its full output domain, kernel-style:
/// every point whose reads are all in bounds is updated; other points are
/// left untouched. Arrays that the stencil both reads (at non-center
/// offsets) and writes are snapshotted first, so all reads observe
/// pre-kernel values, matching GPU execution where no intra-kernel
/// ordering exists between points.
void run_stencil_reference(const ir::Program& prog,
                           const ir::BoundStencil& bound, GridSet& gs);

/// Execute the whole program (iterate blocks unrolled, swaps applied) with
/// the reference interpreter. This is the semantics oracle every generated
/// kernel plan is tested against.
void run_program_reference(const ir::Program& prog, GridSet& gs);

}  // namespace artemis::sim
