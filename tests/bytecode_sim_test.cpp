#include <gtest/gtest.h>

#include <cstring>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/bytecode.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/interp.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "test_programs.hpp"

namespace artemis::sim {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

struct TraceEntry {
  std::string array;
  std::int64_t z, y, x;
  bool write;
  bool operator==(const TraceEntry&) const = default;
};

struct RunResult {
  GridSet gs;
  ExecCounters totals;
  std::vector<TraceEntry> trace;
};

void add_counters(ExecCounters& a, const ExecCounters& b) {
  a.computed_points += b.computed_points;
  a.skipped_points += b.skipped_points;
  a.global_read_elems += b.global_read_elems;
  a.global_write_elems += b.global_write_elems;
  a.scratch_read_elems += b.scratch_read_elems;
  a.scratch_write_elems += b.scratch_write_elems;
  a.blocks += b.blocks;
}

/// Execute every plan of `prog` (per-call, or all calls fused into one
/// plan) with the given engine/jobs, collecting summed counters and,
/// optionally, the global-access trace.
RunResult run_program(const ir::Program& prog, const KernelConfig& cfg,
                      bool fuse, std::uint64_t seed, SimEngine engine,
                      int jobs, bool record_trace) {
  const auto dev = gpumodel::p100();
  RunResult r{GridSet::from_program(prog, seed), {}, {}};
  ExecOptions opts;
  opts.engine = engine;
  opts.jobs = jobs;
  if (record_trace) {
    opts.global_hook = [&r](const std::string& a, std::int64_t z,
                            std::int64_t y, std::int64_t x, bool w) {
      r.trace.push_back({a, z, y, x, w});
    };
  }

  const auto run_plan = [&](const KernelPlan& plan) {
    add_counters(r.totals, execute_plan(plan, r.gs, opts));
  };
  if (fuse) {
    std::vector<ir::BoundStencil> stages;
    int idx = 0;
    for (const auto& step : prog.steps) {
      ARTEMIS_CHECK(step.kind == ir::Step::Kind::Call);
      stages.push_back(
          ir::bind_call(prog, step.call, str_cat("s", idx++, "_")));
    }
    run_plan(codegen::build_plan(prog, std::move(stages), cfg, dev, {}));
  } else {
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind == ir::ExecStep::Kind::Swap) {
        r.gs.swap(step.swap.a, step.swap.b);
        continue;
      }
      std::vector<ir::BoundStencil> stages = {step.stencil};
      run_plan(codegen::build_plan(prog, std::move(stages), cfg, dev, {}));
    }
  }
  return r;
}

/// Bitwise grid equality: stricter than max_abs_diff == 0 (distinguishes
/// -0.0 and would catch NaN payload differences).
::testing::AssertionResult grids_bit_identical(const GridSet& a,
                                               const GridSet& b) {
  for (const auto& [name, ga] : a.grids()) {
    const Grid3D& gb = b.grid(name);
    if (!(ga->extents() == gb.extents())) {
      return ::testing::AssertionFailure()
             << "grid '" << name << "' extents differ";
    }
    if (std::memcmp(ga->raw().data(), gb.raw().data(),
                    ga->raw().size() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "grid '" << name << "' bytes differ";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult counters_equal(const ExecCounters& a,
                                          const ExecCounters& b) {
  if (a.computed_points != b.computed_points ||
      a.skipped_points != b.skipped_points ||
      a.global_read_elems != b.global_read_elems ||
      a.global_write_elems != b.global_write_elems ||
      a.scratch_read_elems != b.scratch_read_elems ||
      a.scratch_write_elems != b.scratch_write_elems ||
      a.blocks != b.blocks) {
    return ::testing::AssertionFailure()
           << "counters differ: computed " << a.computed_points << "/"
           << b.computed_points << " skipped " << a.skipped_points << "/"
           << b.skipped_points << " greads " << a.global_read_elems << "/"
           << b.global_read_elems << " gwrites " << a.global_write_elems
           << "/" << b.global_write_elems << " sreads "
           << a.scratch_read_elems << "/" << b.scratch_read_elems
           << " swrites " << a.scratch_write_elems << "/"
           << b.scratch_write_elems << " blocks " << a.blocks << "/"
           << b.blocks;
  }
  return ::testing::AssertionSuccess();
}

/// The core differential check: the tree-walking oracle (serial) against
/// the compiled engine and the native SIMD engine (strict mode) at jobs
/// 1, 2 and 4 — grids bit-identical, counters identical (the per-block
/// reduction makes them job-count independent), and hook traces
/// identical.
void expect_engines_match(const ir::Program& prog, const KernelConfig& cfg,
                          bool fuse, std::uint64_t seed,
                          const std::string& label) {
  const RunResult oracle = run_program(prog, cfg, fuse, seed,
                                       SimEngine::TreeWalk, 1, false);
  for (const auto engine : {SimEngine::Bytecode, SimEngine::Native}) {
    for (const int jobs : {1, 2, 4}) {
      const RunResult got = run_program(prog, cfg, fuse, seed, engine, jobs,
                                        false);
      EXPECT_TRUE(grids_bit_identical(oracle.gs, got.gs))
          << label << " " << engine_name(engine) << " jobs=" << jobs;
      EXPECT_TRUE(counters_equal(oracle.totals, got.totals))
          << label << " " << engine_name(engine) << " jobs=" << jobs;
    }
  }
  const RunResult ta = run_program(prog, cfg, fuse, seed,
                                   SimEngine::TreeWalk, 1, true);
  const RunResult tb = run_program(prog, cfg, fuse, seed,
                                   SimEngine::Bytecode, 1, true);
  EXPECT_EQ(ta.trace.size(), tb.trace.size()) << label;
  EXPECT_TRUE(ta.trace == tb.trace) << label << ": hook traces differ";
  EXPECT_TRUE(grids_bit_identical(ta.gs, tb.gs)) << label << " (hooked)";
}

KernelConfig random_config(Rng& rng, int dims) {
  KernelConfig cfg;
  const std::int64_t roll = rng.uniform_int(0, 2);
  if (dims >= 2 && roll == 1) {
    cfg.tiling = TilingScheme::StreamSerial;
  } else if (dims >= 2 && roll == 2) {
    cfg.tiling = TilingScheme::StreamConcurrent;
    cfg.stream_chunk = static_cast<int>(rng.uniform_int(3, 9));
  } else {
    cfg.tiling = TilingScheme::Spatial3D;
  }
  cfg.stream_axis = dims - 1;
  cfg.block = {static_cast<int>(rng.uniform_int(2, 7)),
               dims >= 2 ? static_cast<int>(rng.uniform_int(2, 7)) : 1,
               dims >= 3 ? static_cast<int>(rng.uniform_int(1, 5)) : 1};
  if (cfg.tiling != TilingScheme::Spatial3D) {
    cfg.block[static_cast<std::size_t>(dims - 1)] = 1;
  }
  if (rng.coin(0.3)) cfg.unroll[0] = 2;
  return cfg;
}

// ---- seeded random differential sweep --------------------------------------

TEST(BytecodeSim, RandomStencilsMatchTreeWalkOracle) {
  Rng rng(0xB17EC0DE);
  int trial = 0;
  for (const int dims : {1, 2, 3}) {
    for (int rep = 0; rep < 8; ++rep, ++trial) {
      stencils::RandomStencilOptions opts;
      opts.dims = dims;
      opts.max_order = 1 + static_cast<int>(rng.uniform_int(0, 2));
      opts.max_stages = dims == 3 ? 1 + static_cast<int>(rng.uniform_int(0, 2))
                                  : 1;
      opts.allow_calls = rng.coin(0.5);
      const ir::Program prog = stencils::random_program(rng, opts);
      const KernelConfig cfg = random_config(rng, dims);
      const bool fuse = opts.max_stages > 1;
      expect_engines_match(prog, cfg, fuse,
                           0xFACE + static_cast<std::uint64_t>(trial),
                           str_cat("trial ", trial, " dims=", dims, " cfg ",
                                   cfg.to_string()));
    }
  }
  EXPECT_GE(trial, 20);
}

// ---- named kernels, incl. fused multi-stage + scratch ----------------------

TEST(BytecodeSim, JacobiAndDagMatchAcrossTilings) {
  const ir::Program jacobi = dsl::parse(artemis::testing::kJacobiDsl);
  const ir::Program dag = dsl::parse(artemis::testing::kDagDsl);
  for (const auto tiling : {TilingScheme::Spatial3D, TilingScheme::StreamSerial,
                            TilingScheme::StreamConcurrent}) {
    KernelConfig cfg;
    cfg.tiling = tiling;
    cfg.stream_axis = 2;
    cfg.stream_chunk = 5;
    cfg.block = {8, 4, tiling == TilingScheme::Spatial3D ? 2 : 1};
    expect_engines_match(jacobi, cfg, false, 77, "jacobi");
    expect_engines_match(dag, cfg, true, 78, "dag-fused");
  }
}

TEST(BytecodeSim, IterativePingPongMatches) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiIterativeDsl);
  KernelConfig cfg;
  cfg.block = {4, 4, 4};
  expect_engines_match(prog, cfg, false, 99, "iterative");
}

// ---- boundary-rim edge cases -----------------------------------------------

/// A second statement re-reads its own output at the center (pending-hit:
/// not counted as a global read) and at a neighbor (pending-miss: served
/// from the snapshot), plus a rewrite of the same element (last write
/// wins at commit).
TEST(BytecodeSim, PendingHitsAndSnapshotMissesCoexist) {
  const ir::Program prog = dsl::parse(R"(
parameter L=8, M=8, N=8;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil mix (B, A) {
  B[k][j][i] = A[k][j][i] * 0.25;
  B[k][j][i] = B[k][j][i] + B[k][j][i+1] + A[k][j][i-1];
}
mix (out, in);
copyout out;
)");
  KernelConfig cfg;
  cfg.block = {4, 2, 2};
  expect_engines_match(prog, cfg, false, 11, "pending-mix");

  const RunResult r =
      run_program(prog, cfg, false, 11, SimEngine::Bytecode, 1, false);
  // x in [1, 7): both neighbor reads in bounds.
  EXPECT_EQ(r.totals.computed_points, 8 * 8 * 6);
  EXPECT_EQ(r.totals.skipped_points, 8 * 8 * 2);
}

/// Reads at +/-3 on a 6^3 domain: the interior is empty (the whole domain
/// is boundary rim) and no point has all reads in bounds, so every point
/// is vetoed and the grids are untouched.
TEST(BytecodeSim, OutOfBoundsVetoSkipsEveryPoint) {
  const ir::Program prog = dsl::parse(R"(
parameter L=6, M=6, N=6;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil wide (B, A) {
  B[k][j][i] = A[k+3][j][i] + A[k-3][j][i];
}
wide (out, in);
copyout out;
)");
  KernelConfig cfg;
  cfg.block = {3, 3, 3};
  expect_engines_match(prog, cfg, false, 12, "veto-all");

  GridSet gs = GridSet::from_program(prog, 12);
  const GridSet before = gs.clone();
  const auto dev = gpumodel::p100();
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  const ExecCounters c = execute_plan(plan, gs);
  EXPECT_EQ(c.computed_points, 0);
  EXPECT_EQ(c.skipped_points, 6 * 6 * 6);
  EXPECT_EQ(c.global_write_elems, 0);
  EXPECT_TRUE(grids_bit_identical(before, gs));
}

/// Purely negative offsets: the interior is shifted, not shrunk
/// symmetrically; the high faces are all interior.
TEST(BytecodeSim, NegativeAsymmetricHalo) {
  const ir::Program prog = dsl::parse(R"(
parameter L=9, M=9, N=9;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil shift (B, A) {
  B[k][j][i] = A[k-2][j][i] + A[k][j-2][i] + A[k][j][i-2];
}
shift (out, in);
copyout out;
)");
  KernelConfig cfg;
  cfg.block = {4, 3, 2};
  expect_engines_match(prog, cfg, false, 13, "negative-halo");

  GridSet gs = GridSet::from_program(prog, 13);
  const auto dev = gpumodel::p100();
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  const ExecCounters c = execute_plan(plan, gs);
  EXPECT_EQ(c.computed_points, 7 * 7 * 7);
  EXPECT_EQ(c.skipped_points, 9 * 9 * 9 - 7 * 7 * 7);
}

/// `+=` reads the pending value written by an earlier statement of the
/// same point (read-through), and the committed result is the sum.
TEST(BytecodeSim, AccumulateReadsThroughPendingWrites) {
  const ir::Program prog = dsl::parse(R"(
parameter L=8, M=8, N=8;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil acc (B, A) {
  B[k][j][i] = A[k][j][i] * 0.5;
  B[k][j][i] += A[k][j][i+1];
  B[k][j][i] += B[k][j][i];
}
acc (out, in);
copyout out;
)");
  KernelConfig cfg;
  cfg.block = {4, 4, 2};
  expect_engines_match(prog, cfg, false, 14, "accumulate");

  // Spot-check the committed value: ((a*0.5 + a_x1) * 2) at an interior
  // point, computed through both pending read-throughs.
  GridSet gs = GridSet::from_program(prog, 14);
  const double a0 = gs.grid("in").at(3, 3, 3);
  const double a1 = gs.grid("in").at(3, 3, 4);
  const auto dev = gpumodel::p100();
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  execute_plan(plan, gs);
  const double stage1 = a0 * 0.5 + a1;
  EXPECT_EQ(gs.grid("out").at(3, 3, 3), stage1 + stage1);
}

// ---- interior/rim split ----------------------------------------------------

TEST(BytecodeSim, InteriorRegionMatchesHaloGeometry) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const ir::BoundStencil bound = ir::bind_call(prog, prog.steps[0].call);
  const ir::StencilInfo info = ir::analyze(prog, bound);

  GridSet gs = GridSet::from_program(prog, 1);
  SlotMap arrays;
  for (const auto& [name, ai] : info.arrays) arrays.add(name);
  SlotMap scalars;
  for (const auto& name : info.scalars_read) scalars.add(name);
  const CompiledStencil cs = compile_stmts(bound.stmts, 3, arrays, scalars);

  std::vector<ArrayView> views(static_cast<std::size_t>(arrays.size()));
  for (int s = 0; s < arrays.size(); ++s) {
    ArrayView& v = views[static_cast<std::size_t>(s)];
    Grid3D& g = gs.grid(arrays.name(s));
    v.name = &arrays.name(s);
    v.read = g.data();
    v.write = g.data();
    v.ez = v.wz = g.extents().z;
    v.ey = v.wy = g.extents().y;
    v.ex = v.wx = g.extents().x;
  }

  BcRegion full;
  full.lo = {0, 0, 0};
  full.hi = {16, 16, 16};
  const BcRegion in = interior_region(cs, views, full, false, BcRegion{});
  EXPECT_EQ(in.lo, (std::array<std::int64_t, 3>{1, 1, 1}));
  EXPECT_EQ(in.hi, (std::array<std::int64_t, 3>{15, 15, 15}));

  // A sub-box strictly inside the safe zone is all interior.
  BcRegion inner;
  inner.lo = {4, 4, 4};
  inner.hi = {10, 10, 10};
  const BcRegion in2 = interior_region(cs, views, inner, false, BcRegion{});
  EXPECT_EQ(in2.lo, inner.lo);
  EXPECT_EQ(in2.hi, inner.hi);
}

// ---- compiled reference interpreter ----------------------------------------

/// run_stencil_reference (now compiled) against a hand-rolled
/// apply_stmts_at_point loop replicating the historical implementation.
TEST(BytecodeSim, ReferenceMatchesHandRolledOracle) {
  Rng rng(0x07ACE5);
  for (int trial = 0; trial < 6; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = 1 + static_cast<int>(rng.uniform_int(0, 2));
    opts.max_order = 2;
    opts.allow_calls = trial % 2 == 0;
    const ir::Program prog = stencils::random_program(rng, opts);
    const ir::BoundStencil bound = ir::bind_call(prog, prog.steps[0].call);
    const ir::StencilInfo info = ir::analyze(prog, bound);

    GridSet got = GridSet::from_program(prog, 5000 + trial);
    GridSet want = got.clone();
    run_stencil_reference(prog, bound, got);

    // Historical oracle: per-point tree walk with string-keyed lookups and
    // the broad (non-center read+write) snapshot rule.
    std::map<std::string, double> env;
    for (const auto& name : info.scalars_read) {
      env[name] = want.scalar(name);
    }
    std::map<std::string, Grid3D> snapshots;
    for (const auto& [name, ai] : info.arrays) {
      if (!ai.read || !ai.written) continue;
      bool non_center = false;
      for (const auto& off : ai.read_offsets) {
        for (const auto& ix : off) {
          if (ix.is_const() || ix.offset != 0) non_center = true;
        }
      }
      if (non_center) snapshots.emplace(name, want.grid(name));
    }
    const ArrayReader reader =
        [&](const std::string& name, std::int64_t z, std::int64_t y,
            std::int64_t x) -> std::optional<double> {
      const auto snap = snapshots.find(name);
      const Grid3D& g =
          snap != snapshots.end() ? snap->second : want.grid(name);
      if (!g.in_bounds(z, y, x)) return std::nullopt;
      return g.at(z, y, x);
    };
    const ArrayWriter writer = [&](const std::string& name, std::int64_t z,
                                   std::int64_t y, std::int64_t x, double v) {
      want.grid(name).at(z, y, x) = v;
    };
    const Extents dom = want.grid(info.outputs.front()).extents();
    const int dims = static_cast<int>(prog.iterators.size());
    std::vector<std::int64_t> itv;
    for (std::int64_t z = 0; z < dom.z; ++z) {
      for (std::int64_t y = 0; y < dom.y; ++y) {
        for (std::int64_t x = 0; x < dom.x; ++x) {
          if (dims == 3) {
            itv = {z, y, x};
          } else if (dims == 2) {
            itv = {y, x};
          } else {
            itv = {x};
          }
          apply_stmts_at_point(bound.stmts, env, itv, reader, writer);
        }
      }
    }
    EXPECT_TRUE(grids_bit_identical(want, got)) << "trial " << trial;
  }
}

// ---- compile-time diagnostics ----------------------------------------------

TEST(BytecodeSim, CompileRejectsUnknownNames) {
  SlotMap arrays;
  arrays.add("A");
  SlotMap scalars;

  ir::Stmt bad_call;
  bad_call.lhs_name = "A";
  bad_call.lhs_indices = {{0, 0}};
  bad_call.rhs = ir::call("frobnicate", {ir::number(1.0)});
  EXPECT_THROW(compile_stmts({bad_call}, 1, arrays, scalars), Error);

  ir::Stmt bad_scalar;
  bad_scalar.lhs_name = "A";
  bad_scalar.lhs_indices = {{0, 0}};
  bad_scalar.rhs = ir::scalar_ref("nope");
  EXPECT_THROW(compile_stmts({bad_scalar}, 1, arrays, scalars), Error);

  ir::Stmt bad_array;
  bad_array.lhs_name = "B";
  bad_array.lhs_indices = {{0, 0}};
  bad_array.rhs = ir::number(0.0);
  EXPECT_THROW(compile_stmts({bad_array}, 1, arrays, scalars), Error);
}

}  // namespace
}  // namespace artemis::sim
