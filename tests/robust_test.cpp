#include <gtest/gtest.h>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/robust/candidate_runner.hpp"
#include "artemis/robust/errors.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/stencils/benchmarks.hpp"

namespace artemis::robust {
namespace {

/// Every test starts and ends with fault injection disarmed: these tests
/// install their own plans, so a plan inherited from ARTEMIS_FAULT_SPEC
/// (the CI fault-injection job installs one process-wide) must not leak
/// in, and nothing must leak out to unrelated suites.
class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_fault_plan(); }
  void TearDown() override { clear_fault_plan(); }

  static gpumodel::KernelEval fake_eval(double time_s) {
    gpumodel::KernelEval ev;
    ev.valid = true;
    ev.time_s = time_s;
    ev.useful_flops = 1000;
    return ev;
  }
};

// ---- fault-spec grammar -----------------------------------------------------

TEST_F(RobustTest, FaultSpecParsesFullGrammar) {
  const FaultSpec s = parse_fault_spec(
      "crash=0.25, timeout=0.1, perturb=0.5, jitter=0.4, stall_ms=8, "
      "seed=7, site=tuner");
  EXPECT_DOUBLE_EQ(s.crash_p, 0.25);
  EXPECT_DOUBLE_EQ(s.timeout_p, 0.1);
  EXPECT_DOUBLE_EQ(s.perturb_p, 0.5);
  EXPECT_DOUBLE_EQ(s.jitter, 0.4);
  EXPECT_DOUBLE_EQ(s.stall_ms, 8);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.site, "tuner");
  EXPECT_TRUE(s.any_faults());
  EXPECT_FALSE(FaultSpec{}.any_faults());
}

TEST_F(RobustTest, FaultSpecRejectsGarbage) {
  EXPECT_THROW(parse_fault_spec("explode=1"), Error);
  EXPECT_THROW(parse_fault_spec("crash"), Error);
  EXPECT_THROW(parse_fault_spec("crash=1.5"), Error);
  EXPECT_THROW(parse_fault_spec("crash=-0.1"), Error);
  EXPECT_THROW(parse_fault_spec("seed=notanumber"), Error);
}

// ---- deterministic fault decisions ------------------------------------------

TEST_F(RobustTest, FaultDecisionsAreDeterministic) {
  FaultSpec spec;
  spec.crash_p = 0.5;
  spec.seed = 1234;
  const FaultPlan plan(spec);
  int crashes = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "cfg-" + std::to_string(i);
    const FaultAction a = plan.decide("tuner.eval", key, 0);
    EXPECT_EQ(a, plan.decide("tuner.eval", key, 0)) << "pure function";
    if (a == FaultAction::Crash) ++crashes;
  }
  // ~50% of 200 draws; loose bounds, but a broken hash collapses to 0 or
  // 200.
  EXPECT_GT(crashes, 60);
  EXPECT_LT(crashes, 140);
  // A different attempt produces an independent draw somewhere.
  bool attempt_differs = false;
  for (int i = 0; i < 200 && !attempt_differs; ++i) {
    const std::string key = "cfg-" + std::to_string(i);
    attempt_differs = plan.decide("tuner.eval", key, 0) !=
                      plan.decide("tuner.eval", key, 1);
  }
  EXPECT_TRUE(attempt_differs);
}

TEST_F(RobustTest, SiteFilterScopesFaults) {
  FaultSpec spec;
  spec.crash_p = 1.0;
  spec.site = "tuner.eval";
  const FaultPlan plan(spec);
  EXPECT_EQ(plan.decide("tuner.eval", "k", 0), FaultAction::Crash);
  EXPECT_EQ(plan.decide("profile.plan", "k", 0), FaultAction::None);
  EXPECT_EQ(plan.decide("sim.execute", "k", 0), FaultAction::None);
}

TEST_F(RobustTest, FaultPointDisarmedIsANoOpAndArmedThrows) {
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_NO_THROW(fault_point("tuner.eval", "k"));

  FaultSpec spec;
  spec.crash_p = 1.0;
  install_fault_plan(spec);
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_THROW(fault_point("tuner.eval", "k"), EvalCrash);

  clear_fault_plan();
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_NO_THROW(fault_point("tuner.eval", "k"));
}

TEST_F(RobustTest, PerturbedTimeStaysWithinJitterBand) {
  FaultSpec spec;
  spec.perturb_p = 1.0;
  spec.jitter = 0.3;
  install_fault_plan(spec);
  bool moved = false;
  for (int trial = 0; trial < 16; ++trial) {
    const double t = perturbed_time("tuner.eval", "k", 0, trial, 1.0);
    EXPECT_GE(t, 0.7);
    EXPECT_LE(t, 1.3);
    if (t != 1.0) moved = true;
  }
  EXPECT_TRUE(moved);
}

// ---- error taxonomy ---------------------------------------------------------

TEST_F(RobustTest, ErrorClassDiscriminatesTheTaxonomy) {
  EXPECT_STREQ(error_class(EvalTimeout("t")), "eval_timeout");
  EXPECT_STREQ(error_class(EvalCrash("c")), "eval_crash");
  EXPECT_STREQ(error_class(MeasurementUnstable("m")), "measurement_unstable");
  EXPECT_STREQ(error_class(PlanError("p")), "plan_error");
  EXPECT_STREQ(error_class(Error("e")), "error");
  EXPECT_STREQ(error_class(std::runtime_error("r")), "exception");
}

// ---- candidate runner -------------------------------------------------------

TEST_F(RobustTest, RunnerFastPathEvaluatesOnce) {
  CandidateRunner runner;  // zero-cost defaults, no faults installed
  int calls = 0;
  const auto out = runner.run("tuner.eval", "k", [&] {
    ++calls;
    return fake_eval(2e-3);
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.status, RunStatus::Ok);
  EXPECT_DOUBLE_EQ(out.time_s, 2e-3);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.retries, 0);
  EXPECT_EQ(calls, 1);
}

TEST_F(RobustTest, RunnerFastPathMapsPlanErrorToInfeasible) {
  CandidateRunner runner;
  const auto out = runner.run(
      "tuner.eval", "k",
      []() -> gpumodel::KernelEval { throw PlanError("no such mapping"); });
  EXPECT_EQ(out.status, RunStatus::Infeasible);
  EXPECT_EQ(out.reason, "no such mapping");
}

TEST_F(RobustTest, RunnerRetriesTransientCrashes) {
  RunnerOptions opts;
  opts.deadline_ms = 1e9;  // arm the resilient path, deadline never trips
  opts.max_attempts = 3;
  CandidateRunner runner(opts);
  int calls = 0;
  const auto out = runner.run("tuner.eval", "k", [&] {
    if (++calls < 3) throw EvalCrash("transient");
    return fake_eval(1e-3);
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.retries, 2);
  EXPECT_EQ(calls, 3);
  // Success cleared the failure streak: nothing is quarantined.
  EXPECT_EQ(runner.quarantined_count(), 0);
}

TEST_F(RobustTest, RunnerDoesNotRetryDeterministicInfeasibility) {
  RunnerOptions opts;
  opts.deadline_ms = 1e9;
  CandidateRunner runner(opts);
  int calls = 0;
  const auto out = runner.run("tuner.eval", "k",
                              [&]() -> gpumodel::KernelEval {
                                ++calls;
                                throw PlanError("deterministic");
                              });
  EXPECT_EQ(out.status, RunStatus::Infeasible);
  EXPECT_EQ(calls, 1) << "PlanError must not burn retry attempts";
  EXPECT_EQ(runner.quarantined_count(), 0)
      << "infeasibility is not a quarantine debit";
}

TEST_F(RobustTest, RunnerQuarantinesAfterConsecutiveFailures) {
  RunnerOptions opts;
  opts.deadline_ms = 1e9;
  opts.max_attempts = 3;
  opts.quarantine_threshold = 3;
  CandidateRunner runner(opts);
  int calls = 0;
  const auto fail = [&]() -> gpumodel::KernelEval {
    ++calls;
    throw EvalCrash("always");
  };
  const auto first = runner.run("tuner.eval", "k", fail);
  EXPECT_EQ(first.status, RunStatus::Crash);
  EXPECT_TRUE(first.quarantined_now);
  EXPECT_TRUE(runner.is_quarantined("k"));
  EXPECT_EQ(calls, 3);

  const auto second = runner.run("tuner.eval", "k", fail);
  EXPECT_EQ(second.status, RunStatus::Quarantined);
  EXPECT_EQ(calls, 3) << "quarantined keys are never re-evaluated";
  EXPECT_EQ(runner.quarantined_count(), 1);
  // Other keys are unaffected.
  EXPECT_FALSE(runner.is_quarantined("other"));
}

TEST_F(RobustTest, RunnerRejectsUnstableTrials) {
  RunnerOptions opts;
  opts.trials = 3;  // arms the runner
  opts.mad_tolerance = 0.05;
  opts.max_attempts = 2;
  opts.quarantine_threshold = 100;  // keep quarantine out of this test
  CandidateRunner runner(opts);
  int calls = 0;
  const double times[] = {1e-3, 2e-3, 4e-3};
  const auto out = runner.run("tuner.eval", "k", [&] {
    return fake_eval(times[calls++ % 3]);
  });
  EXPECT_EQ(out.status, RunStatus::Unstable);
  EXPECT_EQ(out.attempts, 2);
}

TEST_F(RobustTest, RunnerMedianIsRobustToOneSlowTrial) {
  RunnerOptions opts;
  opts.trials = 3;
  opts.mad_tolerance = 10.0;  // accept the dispersion; test the median
  CandidateRunner runner(opts);
  int calls = 0;
  const double times[] = {1e-3, 50e-3, 1.2e-3};  // one wild outlier
  const auto out = runner.run("tuner.eval", "k", [&] {
    return fake_eval(times[calls++ % 3]);
  });
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.time_s, 1.2e-3) << "median, not mean or max";
}

TEST_F(RobustTest, InjectedStallsAreClassifiedAsTimeouts) {
  FaultSpec spec;
  spec.timeout_p = 1.0;  // every attempt stalls
  spec.stall_ms = 8;     // implied deadline: 4 ms
  install_fault_plan(spec);
  RunnerOptions opts;
  opts.max_attempts = 2;
  opts.quarantine_threshold = 100;
  CandidateRunner runner(opts);
  const auto out =
      runner.run("tuner.eval", "k", [&] { return fake_eval(1e-3); });
  EXPECT_EQ(out.status, RunStatus::Timeout);
  EXPECT_EQ(out.attempts, 2);
}

// ---- tuner integration ------------------------------------------------------

class RobustTuneTest : public RobustTest {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;

  autotune::PlanFactory factory_for(const ir::Program& prog) {
    return [&prog, this](const codegen::KernelConfig& cfg) {
      return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg,
                                          dev_);
    };
  }
};

TEST_F(RobustTuneTest, FaultInjectedTuneMatchesFaultFreePlan) {
  // The headline acceptance property: with 20% injected crashes and 5%
  // timeouts (fixed seed), retries recover every candidate and the tuner
  // emits the same best configuration as the fault-free run.
  const auto prog = stencils::benchmark_program("miniflux", 128);
  const auto factory = factory_for(prog);
  const codegen::KernelConfig seed;

  const autotune::TuneResult clean =
      autotune::hierarchical_tune(factory, seed, dev_, params_);

  install_fault_plan(parse_fault_spec(
      "crash=0.2,timeout=0.05,stall_ms=4,seed=42,site=tuner.eval"));
  const autotune::TuneResult faulted =
      autotune::hierarchical_tune(factory, seed, dev_, params_);
  clear_fault_plan();

  EXPECT_EQ(autotune::serialize_config(faulted.best.config),
            autotune::serialize_config(clean.best.config));
  EXPECT_DOUBLE_EQ(faulted.best.time_s, clean.best.time_s);
  EXPECT_FALSE(faulted.degraded);
  // The faults were really firing: some candidates were lost outright
  // (a lost stage-1 candidate can shift the stage-2 sweep slightly, so
  // enumeration counts are not compared — only the winner is).
  EXPECT_GT(faulted.crashed + faulted.timed_out + faulted.quarantined, 0);
  EXPECT_GT(faulted.total_evaluated(), 100);
}

TEST_F(RobustTuneTest, TunerDegradesToSeedWhenEverythingCrashes) {
  // crash=1.0: every evaluation attempt dies, every candidate is lost,
  // and the search degrades to the analytically evaluated seed config
  // instead of throwing. (7pt-smoother: its default seed is itself
  // feasible, so the baseline fallback has something to return.)
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  const auto& call = prog.steps[0].body[0].call;
  const autotune::PlanFactory factory =
      [&prog, &call, this](const codegen::KernelConfig& cfg) {
        return codegen::build_plan_for_call(prog, call, cfg, dev_);
      };
  const codegen::KernelConfig seed;
  install_fault_plan(
      parse_fault_spec("crash=1.0,seed=9,site=tuner.eval"));
  const autotune::TuneResult r =
      autotune::hierarchical_tune(factory, seed, dev_, params_);
  clear_fault_plan();
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.best.eval.valid);
  EXPECT_GT(r.crashed, 0);
  EXPECT_GT(r.quarantined, 0);
  EXPECT_EQ(autotune::serialize_config(r.best.config),
            autotune::serialize_config(seed));
}

TEST_F(RobustTuneTest, InfeasibleSpaceStillThrowsPlanError) {
  // Degradation only rescues transient failures: when the space is
  // deterministically infeasible (the seed included), PlanError still
  // propagates exactly as before the resilience layer.
  const autotune::PlanFactory factory =
      [](const codegen::KernelConfig&) -> codegen::KernelPlan {
    throw PlanError("nothing is feasible");
  };
  const codegen::KernelConfig seed;
  EXPECT_THROW(autotune::hierarchical_tune(factory, seed, dev_, params_),
               PlanError);
}

}  // namespace
}  // namespace artemis::robust
