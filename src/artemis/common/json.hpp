#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace artemis {

/// A minimal JSON value: enough to build the telemetry trace/report output
/// and to parse it back (round-trip tests, downstream trajectory tooling).
/// Not a general-purpose library: no comments, no NaN/Inf (serialized as
/// null), numbers are double or int64.
class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  bool is_string() const { return kind_ == Kind::String; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == Kind::Double ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return str_; }

  /// Array access.
  void push_back(Json v) { arr_.push_back(std::move(v)); }
  std::size_t size() const {
    return kind_ == Kind::Object ? obj_.size() : arr_.size();
  }
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const { return arr_; }

  /// Object access. set() keeps insertion order (stable, diffable dumps).
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  /// Lookup; returns a shared Null value for missing keys.
  const Json& operator[](const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serialize. indent < 0 yields the compact single-line form.
  std::string dump(int indent = -1) const;

  /// Parse a JSON document; throws artemis::Error on malformed input.
  static Json parse(const std::string& text);

  /// Escape a string for embedding inside a JSON string literal (without
  /// the surrounding quotes).
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace artemis
