#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::stencils {

/// One of the paper's 11 evaluation benchmarks (Table I).
///
/// The first four (HPGMG smoothers, helmholtz, denoise) are written out
/// from their public definitions. The seven complex spatial stencils
/// (ExpCNS miniflux/hypterm/diffterm, SW4lite addsgd4/6, rhs4center,
/// rhs4sgcurv) are *synthesized*: we do not ship the proprietary physics,
/// but the generators match Table I's stencil order, array count (3D and
/// 1D), temporary-scalar structure (Fig. 3) and FLOP count to within a few
/// percent, which is what the performance study depends on. See DESIGN.md
/// section 2.
struct BenchmarkSpec {
  std::string name;
  std::int64_t domain = 320;  ///< default extent per axis (paper value)
  int time_steps = 1;         ///< Table I column T
  int order = 1;              ///< Table I column k
  std::int64_t paper_flops = 0;
  int paper_arrays = 0;       ///< Table I "# IO Arrays"
  bool iterative = false;     ///< time-iterated (deep-tunable)

  /// Produce DSL source. `extent` overrides the domain size (0 = paper
  /// size); `t` overrides the iterate count (-1 = paper value; ignored
  /// for spatial stencils).
  std::string dsl(std::int64_t extent = 0, int t = -1) const;

  std::function<std::string(std::int64_t extent, int t)> generator;
};

/// All 11 benchmarks in Table I order.
const std::vector<BenchmarkSpec>& paper_benchmarks();

/// Lookup by name; throws artemis::Error if unknown.
const BenchmarkSpec& benchmark(const std::string& name);

/// SW4 super-grid damping source, with or without the expert `#assign`
/// resource directives (the Section VIII-E experiment). r = 2 -> addsgd4,
/// r = 3 -> addsgd6.
std::string addsgd_dsl(std::int64_t extent, int r, bool with_assign);

/// Parse the benchmark's DSL at the given size.
ir::Program benchmark_program(const std::string& name,
                              std::int64_t extent = 0, int t = -1);

}  // namespace artemis::stencils
