#pragma once

#include <string>
#include <vector>

#include "artemis/ir/analysis.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::transform {

/// A time-tiled version of an iterative stencil (Section VI-A): one fused
/// kernel that advances the solution by `x` time steps using overlapped
/// tiling, with x-1 kernel-internal intermediates.
struct TimeTiledKernel {
  /// The source program augmented with declarations for the synthesized
  /// intermediate arrays (named __ttK_<out>). Build plans and GridSets
  /// against this program.
  ir::Program augmented;
  /// The x fused stages; stage k reads stage k-1's output. The final stage
  /// writes the original output array. Executing these stages as one plan
  /// and then applying the iterate body's swap equals x reference
  /// iterations of the body.
  std::vector<ir::BoundStencil> stages;
  int time_tile = 1;
};

/// Construct the (x x 1) fused version of an iterate block whose body is a
/// single stencil call followed by a swap (the shape of every iterative
/// benchmark). Throws SemanticError for other iterate shapes.
TimeTiledKernel time_tile_iterate(const ir::Program& prog,
                                  const ir::Step& iterate_step, int x);

/// Fuse every top-level Call step of a spatial stencil DAG into a single
/// "maxfuse" stencil definition (Section VI-B). Local temporaries are
/// renamed apart; the resulting program has one stencil and one call, and
/// re-emits as DSL text like the paper's generated specifications.
ir::Program maxfuse_program(const ir::Program& prog);

/// Bind all top-level calls of a program as a fused stage list (utility
/// for planning a DAG as one kernel without rewriting the program).
std::vector<ir::BoundStencil> bind_all_calls(const ir::Program& prog);

}  // namespace artemis::transform
