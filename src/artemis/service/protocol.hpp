#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "artemis/common/json.hpp"

namespace artemis::service {

/// Wire protocol version, echoed by the stats endpoint. Bumped on any
/// incompatible change to the frame or message grammar.
constexpr int kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. A length prefix above this is a
/// framing error (the connection cannot resync past it), not a request.
constexpr std::uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB

/// Frame one payload: 4-byte big-endian payload length, then the payload
/// bytes (UTF-8 JSON). Throws artemis::Error when payload exceeds
/// kMaxFrameBytes.
std::string encode_frame(const std::string& payload);

/// Incremental decoder for the length-prefixed stream. Feed bytes as they
/// arrive; next() pops complete payloads in order. An oversized length
/// prefix poisons the decoder — error() explains, no further frames
/// decode, and the connection must be closed (there is no way to find
/// the next frame boundary). Truncated trailing bytes are not an error
/// until the peer closes: buffered() reports how many are pending.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// One complete payload, or nullopt (need more bytes / poisoned).
  std::optional<std::string> next();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes received but not yet consumed by a complete frame. Nonzero at
  /// connection close means the final frame was torn.
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool failed_ = false;
  std::string error_;
};

/// Error codes carried in response `error.code`. Stable strings: clients
/// and the fuzz harness switch on them.
namespace errc {
inline constexpr const char* kBadFrame = "bad_frame";
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownMethod = "unknown_method";
inline constexpr const char* kCompileError = "compile_error";
inline constexpr const char* kTuneError = "tune_error";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInternal = "internal";
}  // namespace errc

/// A parsed request: `{"id": <any>, "method": "<name>", "params": {...}}`.
/// `id` is echoed verbatim in the response (null when absent), `params`
/// defaults to an empty object.
struct Request {
  Json id;
  std::string method;
  Json params = Json::object();
};

/// Parse and validate a request payload. On failure returns nullopt and
/// sets *code/*message to the structured error to respond with (the id,
/// when recoverable, is written to *id so the error can still be
/// correlated).
std::optional<Request> parse_request(const std::string& payload,
                                     std::string* code, std::string* message,
                                     Json* id);

/// Build the success / error response envelopes:
///   {"id": ..., "ok": true,  "result": {...}}
///   {"id": ..., "ok": false, "error": {"code": "...", "message": "..."}}
Json make_response(const Json& id, Json result);
Json make_error(const Json& id, const std::string& code,
                const std::string& message);

}  // namespace artemis::service
