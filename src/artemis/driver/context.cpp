#include "artemis/driver/context.hpp"

#include <functional>
#include <utility>

#include "artemis/common/grid.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/gridset.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::driver {

gpumodel::DeviceSpec device_by_name(const std::string& name) {
  if (name == "k40") return gpumodel::k40();
  if (name == "p100") return gpumodel::p100();
  if (name == "v100") return gpumodel::v100();
  if (name == "a100") return gpumodel::a100();
  if (name == "h100") return gpumodel::h100();
  throw Error(str_cat(
      "unknown device '", name, "' (expected k40|p100|v100|a100|h100)"));
}

Strategy strategy_by_name(const std::string& name) {
  if (name == "artemis") return artemis_strategy();
  if (name == "ppcg") return ppcg_strategy();
  if (name == "stencilgen") return stencilgen_strategy();
  if (name == "global") return global_strategy(false);
  if (name == "global-stream") return global_strategy(true);
  throw Error(str_cat("unknown strategy '", name, "'"));
}

ArtemisContext::ArtemisContext(ContextOptions opts)
    : opts_(std::move(opts)),
      vfs_(opts_.vfs != nullptr ? opts_.vfs : &storage::real_vfs()) {
  if (!opts_.store_root.empty()) {
    store_.emplace(*vfs_, opts_.store_root);
  }
  if (!opts_.cache_path.empty()) {
    cache_load_ = cache_.load_file(opts_.cache_path, vfs_);
  }
}

int ArtemisContext::resolved_jobs() const {
  return opts_.jobs > 0 ? opts_.jobs : default_jobs();
}

CompileInfo ArtemisContext::compile(const std::string& source) const {
  CompileInfo info;
  {
    telemetry::Span span("parse", "pipeline");
    info.program = dsl::parse(source);
  }
  info.plan_key = storage::plan_store_key(info.program, opts_.device.name,
                                          autotune::kTunerVersion);
  info.run_key = str_cat(std::hash<std::string>{}(source), "/",
                         opts_.strategy.name, "/", opts_.device.name);
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compiles;
  }
  return info;
}

storage::PlanRecord ArtemisContext::make_plan_record(
    const std::string& plan_key, const ProgramResult& result,
    const gpumodel::DeviceSpec& dev, const Strategy& strategy) {
  ARTEMIS_CHECK_MSG(!result.kernels.empty(),
                    "cannot record a schedule with no kernels");
  storage::PlanRecord rec;
  rec.key = plan_key;
  rec.config = autotune::serialize_config(result.kernels[0].config);
  rec.time_s = result.time_s;
  rec.tflops = result.tflops;
  rec.meta["device"] = dev.name;
  rec.meta["strategy"] = strategy.name;
  rec.meta["tuner_version"] = std::to_string(autotune::kTunerVersion);
  return rec;
}

std::optional<storage::PlanRecord> ArtemisContext::stored_plan(
    const std::string& plan_key) {
  if (!store_.has_value()) return std::nullopt;
  auto hit = store_->get(plan_key);
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    if (hit.has_value()) {
      ++stats_.store_hits;
    }
  }
  return hit;
}

TuneOutcome ArtemisContext::tune(const std::string& source,
                                 const TuneRequest& req) {
  TuneOutcome out;
  out.compile = compile(source);
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tunes;
  }

  // Consult the durable store first: a hit either answers the request
  // outright (daemon read path) or is reported alongside a fresh tune
  // (one-shot CLI path).
  if (store_.has_value()) {
    if (auto hit = stored_plan(out.compile.plan_key)) {
      out.store_hit = true;
      out.stored = *hit;
      if (req.reuse_stored_plan) {
        out.served_from_store = true;
        out.record = std::move(*hit);
        out.plan_bytes = storage::encode_plan_record(out.record);
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.store_serves;
        return out;
      }
    }
  }

  // Informational cache lookup (artemisc semantics: report, never skip).
  out.cache_hit = cache_.get(out.compile.run_key);
  if (out.cache_hit.has_value()) {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cache_hits;
  }

  // Per-tune strategy copy: the journal pointer and jobs knob below are
  // request-local, so concurrent tunes never share mutable state.
  Strategy strat = opts_.strategy;
  strat.tune.jobs = opts_.jobs;
  if (req.model_prune_k >= 0) strat.tune.model_prune_k = req.model_prune_k;

  // Crash-safe evaluation journal, scoped to this request.
  robust::TuningJournal journal(*vfs_);
  if (!req.journal_path.empty()) {
    out.journal_load =
        journal.open(req.journal_path, out.compile.run_key, req.resume);
    if (out.journal_load.status ==
        robust::JournalLoadResult::Status::IoError) {
      throw Error(str_cat("cannot open journal '", req.journal_path,
                          "': ", out.journal_load.message));
    }
    telemetry::counter_add(
        "journal.replayed",
        static_cast<std::int64_t>(out.journal_load.replayed));
    strat.tune.journal = &journal;
  }

  out.result = optimize_program(out.compile.program, opts_.device,
                                opts_.params, strat);
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tuner_runs;
  }
  out.journal_active = journal.active();
  out.journal_recorded = journal.recorded();
  out.journal_replayed = journal.replay_size();

  if (!opts_.cache_path.empty() && !out.result.kernels.empty()) {
    cache_.put(out.compile.run_key,
               {out.result.kernels[0].config, out.result.time_s,
                out.result.tflops});
    out.cache_saved = cache_.save_file(opts_.cache_path, vfs_);
  }

  if (!out.result.kernels.empty()) {
    out.record = make_plan_record(out.compile.plan_key, out.result,
                                  opts_.device, strat);
    out.plan_bytes = storage::encode_plan_record(out.record);
    if (store_.has_value()) {
      out.store_put = store_->put(out.record)
                          ? TuneOutcome::StorePut::Ok
                          : TuneOutcome::StorePut::Failed;
    }
  }
  return out;
}

RunOutcome ArtemisContext::run(const std::string& source) {
  RunOutcome out;
  out.compile = compile(source);
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.runs;
  }
  const ir::Program& prog = out.compile.program;
  sim::GridSet ref = sim::GridSet::from_program(prog, 1);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);
  codegen::KernelConfig cfg;
  cfg.block = {8, 8, 4};
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      tiled.swap(step.swap.a, step.swap.b);
      continue;
    }
    const auto plan = codegen::build_plan(prog, {step.stencil}, cfg,
                                          opts_.device, opts);
    sim::ExecOptions eo;
    eo.engine = opts_.engine;
    sim::execute_plan(plan, tiled, eo);
  }
  for (const auto& name : prog.copyout) {
    RunCheck check;
    check.array = name;
    check.max_abs_diff =
        Grid3D::max_abs_diff(ref.grid(name), tiled.grid(name));
    for (const double v : tiled.grid(name).raw()) check.checksum += v;
    out.checks.push_back(std::move(check));
  }
  return out;
}

ContextStats ArtemisContext::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace artemis::driver
