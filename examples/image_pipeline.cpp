// A 2D image-processing pipeline (the multi-statement stencil DAG use
// case of the paper's introduction): blur-x -> blur-y -> sharpen, fused
// into one kernel with overlapped tiling.
//
// Demonstrates: 2D programs (two iterators), DAG fusion with internal
// arrays, recompute-halo geometry, and the exactness of the functional
// executor against the reference interpreter.

#include <cstdio>

#include "artemis/codegen/cuda_emitter.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/transform/fusion.hpp"

using namespace artemis;

static const char* kPipeline = R"(
parameter M=512, N=512;
iterator j, i;
double img[M,N], bx[M,N], by[M,N], out[M,N], w;
copyin img, w;
stencil blur_x (BX, IMG) {
  BX[j][i] = 0.25*IMG[j][i-1] + 0.5*IMG[j][i] + 0.25*IMG[j][i+1];
}
stencil blur_y (BY, BX) {
  BY[j][i] = 0.25*BX[j-1][i] + 0.5*BX[j][i] + 0.25*BX[j+1][i];
}
stencil sharpen (OUT, IMG, BY, w) {
  OUT[j][i] = IMG[j][i] + w*(IMG[j][i] - BY[j][i]);
}
blur_x (bx, img);
blur_y (by, bx);
sharpen (out, img, by, w);
copyout out;
)";

int main() {
  const auto dev = gpumodel::p100();
  const ir::Program prog = dsl::parse(kPipeline);

  // Fuse the whole three-stage pipeline into one kernel.
  const auto stages = transform::bind_all_calls(prog);
  codegen::KernelConfig cfg;
  cfg.block = {32, 8, 1};
  const auto plan = codegen::build_plan(prog, stages, cfg, dev);

  std::printf("fused pipeline: %s\n", plan.name.c_str());
  std::printf("internal arrays (never touch DRAM):");
  for (const auto& a : plan.internal_arrays) std::printf(" %s", a.c_str());
  std::printf("\nrecompute expansion per stage (x,y):");
  for (const auto& e : plan.stage_expand) {
    std::printf("  (%d,%d)", e[0], e[1]);
  }
  std::printf("\nshared memory per block: %lld B\n",
              static_cast<long long>(plan.shmem_bytes_per_block));

  const auto ev = gpumodel::evaluate(plan, dev);
  std::printf("modelled: %.3f ms, %.3f useful TFLOPS, OI_dram %.2f\n",
              ev.time_s * 1e3, ev.tflops(), ev.counters.oi_dram());

  // Compare against the unfused three-kernel schedule.
  double unfused_time = 0;
  for (const auto& step : prog.steps) {
    const auto k = codegen::build_plan_for_call(prog, step.call, cfg, dev);
    unfused_time += gpumodel::evaluate(k, dev).time_s;
  }
  std::printf("unfused 3-kernel schedule: %.3f ms -> fusion speedup "
              "%.2fx\n",
              unfused_time * 1e3, unfused_time / ev.time_s);

  // Functional check on a small image.
  {
    const ir::Program small = dsl::parse(
        std::string(kPipeline).replace(
            std::string(kPipeline).find("M=512, N=512"), 12,
            "M=48, N=64"));
    sim::GridSet ref = sim::GridSet::from_program(small, 7);
    sim::GridSet tiled = ref.clone();
    sim::run_program_reference(small, ref);
    const auto small_stages = transform::bind_all_calls(small);
    codegen::KernelConfig scfg;
    scfg.block = {8, 8, 1};
    const auto splan = codegen::build_plan(small, small_stages, scfg, dev);
    sim::execute_plan(splan, tiled);
    std::printf("functional check (48x64 image): max |diff| = %g\n",
                Grid3D::max_abs_diff(ref.grid("out"), tiled.grid("out")));
  }
  return 0;
}
