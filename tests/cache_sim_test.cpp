#include <gtest/gtest.h>

#include "artemis/common/check.hpp"
#include "artemis/gpumodel/cache_sim.hpp"

namespace artemis::gpumodel {
namespace {

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c(1024, 32, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(31));   // same line
  EXPECT_FALSE(c.access(32));  // next line
  EXPECT_EQ(c.hits(), 2);
  EXPECT_EQ(c.misses(), 2);
  EXPECT_EQ(c.miss_bytes(), 64);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // 2-way, 2 sets of 32B lines: capacity 128B. Lines 0, 2, 4 map to set 0.
  CacheSim c(128, 32, 2);
  EXPECT_FALSE(c.access(0 * 32));
  EXPECT_FALSE(c.access(2 * 32));
  EXPECT_TRUE(c.access(0 * 32));   // refresh line 0: line 2 is now LRU
  EXPECT_FALSE(c.access(4 * 32));  // evicts line 2
  EXPECT_TRUE(c.access(0 * 32));   // line 0 retained
  EXPECT_FALSE(c.access(2 * 32));  // line 2 was evicted
}

TEST(CacheSim, SetIndexingIsolatesSets) {
  CacheSim c(128, 32, 2);
  // Lines 1 and 3 map to set 1; they must not disturb set 0.
  c.access(0 * 32);
  c.access(1 * 32);
  c.access(3 * 32);
  EXPECT_TRUE(c.access(0 * 32));
}

TEST(CacheSim, CapacityBoundStreaming) {
  // Stream far more data than capacity: hit rate collapses to intra-line
  // reuse only.
  CacheSim c(4096, 32, 8);
  for (std::uint64_t pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 1 << 16; a += 8) c.access(a);
  }
  // Each line holds 4 8-byte accesses: 3/4 intra-line hits; the second
  // pass cannot hit (working set 64KB >> 4KB).
  EXPECT_NEAR(c.hit_rate(), 0.75, 0.01);
}

TEST(CacheSim, FullyResidentWorkingSet) {
  CacheSim c(1 << 16, 32, 8);
  for (std::uint64_t pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 1 << 12; a += 8) c.access(a);
  }
  // First pass: 1 miss per line; then everything hits.
  const std::int64_t lines = (1 << 12) / 32;
  EXPECT_EQ(c.misses(), lines);
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim c(1024, 32, 2);
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(0, 32, 2), Error);
  EXPECT_THROW(CacheSim(1024, 24, 2), Error);  // non-power-of-two line
}

TEST(CacheSim, TinyCapacityStillWorks) {
  CacheSim c(16, 32, 4);  // fewer bytes than one line: one set is forced
  EXPECT_GT(c.capacity_bytes(), 0);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
}

TEST(CacheSim, SingleLineWorkingSet) {
  // The smallest possible working set: every address inside one line.
  // One cold miss, then hits forever, at any associativity.
  for (const int ways : {1, 2, 16}) {
    CacheSim c(1 << 20, 32, ways);
    for (std::uint64_t a = 0; a < 32; ++a) c.access(a);
    for (int pass = 0; pass < 3; ++pass) {
      for (std::uint64_t a = 0; a < 32; a += 8) c.access(a);
    }
    EXPECT_EQ(c.misses(), 1) << "ways=" << ways;
    EXPECT_EQ(c.miss_bytes(), 32) << "ways=" << ways;
  }
}

TEST(CacheSim, ConflictSetExactlyAssociativitySized) {
  // `ways` lines all mapping to set 0 fit exactly: after one warm-up
  // pass every revisit hits, regardless of LRU order.
  const int ways = 4;
  CacheSim c(32 * 2 * ways, 32, ways);  // 2 sets
  const std::uint64_t set_stride = 2 * 32;
  for (int i = 0; i < ways; ++i) c.access(i * set_stride);
  EXPECT_EQ(c.misses(), ways);
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < ways; ++i) {
      EXPECT_TRUE(c.access(i * set_stride)) << "pass " << pass << " i " << i;
    }
  }
  EXPECT_EQ(c.misses(), ways);  // warm-up misses only
}

TEST(CacheSim, ConflictSetOneOverAssociativityThrashes) {
  // ways+1 lines cycling through one set under LRU: the incoming line
  // always evicts the one needed next, so every access misses.
  const int ways = 4;
  CacheSim c(32 * 2 * ways, 32, ways);
  const std::uint64_t set_stride = 2 * 32;
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < ways + 1; ++i) {
      EXPECT_FALSE(c.access(i * set_stride)) << "pass " << pass;
    }
  }
  EXPECT_EQ(c.hits(), 0);
}

TEST(CacheSim, ZeroAccessesReportCleanStats) {
  CacheSim c(1024, 32, 2);
  EXPECT_EQ(c.accesses(), 0);
  EXPECT_EQ(c.hit_rate(), 0.0);
  EXPECT_EQ(c.miss_bytes(), 0);
}

}  // namespace
}  // namespace artemis::gpumodel
