#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace artemis {

/// printf-free string building: str_cat(1, " + ", x) etc.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Join a range of strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Split on a single-character separator; does not collapse empties.
std::vector<std::string> split(const std::string& s, char sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Indent every line of a (possibly multi-line) block by `n` spaces.
std::string indent(const std::string& block, int n);

/// Format a double with `prec` significant digits, trimming trailing zeros
/// (used by table printers and the CUDA emitter).
std::string format_double(double v, int prec = 6);

}  // namespace artemis
