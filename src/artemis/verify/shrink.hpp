#pragma once

#include <functional>

#include "artemis/ir/program.hpp"

namespace artemis::verify {

/// Predicate the shrinker preserves: true when the candidate program
/// still exhibits the failure being minimized. Implementations should
/// re-run the failing property check and must not throw (catch and map
/// engine crashes to `true` if a crash is the failure being chased).
using StillFails = std::function<bool(const ir::Program&)>;

struct ShrinkOptions {
  /// Property evaluations the greedy search may spend in total.
  int max_checks = 400;
  /// Expression-simplification candidates generated per statement per
  /// round (bounds the candidate fan-out on huge expressions).
  int max_expr_variants = 40;
};

struct ShrinkStats {
  int rounds = 0;  ///< accepted (strictly smaller) candidates
  int checks = 0;  ///< property evaluations spent
};

/// Greedily minimize `failing` while `still_fails` holds: drop whole
/// stages (step + now-unused stencil), drop statements, halve extents,
/// halve iterate counts, replace expression nodes by their children,
/// zero index offsets, and strip #pragma/#assign clauses. Candidates that
/// no longer validate are skipped. Deterministic: candidates are tried in
/// a fixed order and the first still-failing one is taken each round.
ir::Program shrink_program(const ir::Program& failing,
                           const StillFails& still_fails,
                           const ShrinkOptions& opts = {},
                           ShrinkStats* stats = nullptr);

}  // namespace artemis::verify
