#include "artemis/sim/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::sim {

int SlotMap::add(const std::string& name) {
  const auto [it, inserted] =
      index_.try_emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

int SlotMap::slot(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& SlotMap::name(int slot) const {
  return names_.at(static_cast<std::size_t>(slot));
}

namespace {

/// Emission state: tracks stack depth, declared locals (with positional
/// shadowing of program scalars, exactly like the tree walk's locals map),
/// and which arrays already have a pending store.
struct Emitter {
  CompiledStencil out;
  const SlotMap* arrays = nullptr;
  const SlotMap* scalars = nullptr;
  std::map<std::string, int> local_slots;  ///< declared so far
  std::set<std::int32_t> stored_arrays;    ///< arrays with an earlier Store
  int depth = 0;

  void emit(BcOp op, std::int32_t a = 0) {
    out.code.push_back({op, a});
    switch (op) {
      case BcOp::PushConst:
      case BcOp::PushScalar:
      case BcOp::PushLocal:
      case BcOp::Load:
        ++depth;
        break;
      case BcOp::Add:
      case BcOp::Sub:
      case BcOp::Mul:
      case BcOp::Div:
      case BcOp::Min:
      case BcOp::Max:
      case BcOp::Pow:
      case BcOp::StoreLocal:
      case BcOp::Store:
      case BcOp::StoreAccum:
        --depth;
        break;
      default:
        break;  // unary: depth unchanged
    }
    out.max_stack = std::max(out.max_stack, depth);
    // ir::flop_count's convention: one FLOP per Unary/Binary/Call node
    // plus one per `+=` read-through accumulate.
    switch (op) {
      case BcOp::Neg:
      case BcOp::Add:
      case BcOp::Sub:
      case BcOp::Mul:
      case BcOp::Div:
      case BcOp::Sqrt:
      case BcOp::Fabs:
      case BcOp::Exp:
      case BcOp::Log:
      case BcOp::Min:
      case BcOp::Max:
      case BcOp::Pow:
      case BcOp::StoreAccum:
        ++out.flops_per_point;
        break;
      default:
        break;
    }
  }

  std::int32_t make_access(const std::string& array,
                           const std::vector<ir::IndexExpr>& indices) {
    const int slot = arrays->slot(array);
    ARTEMIS_CHECK_MSG(slot >= 0, "unbound array '" << array << "'");
    const std::size_t nd = indices.size();
    ARTEMIS_CHECK(nd >= 1 && nd <= 3);
    BcAccess a;
    a.array = slot;
    for (std::size_t d = 0; d < nd; ++d) {
      const auto& ix = indices[d];
      const std::size_t zyx = 3 - nd + d;  // trailing-axis mapping
      a.off[zyx] = ix.offset;
      if (!ix.is_const()) {
        ARTEMIS_CHECK(ix.iter >= 0 && ix.iter < out.dims);
        // Iterator i (outermost first) drives point coordinate
        // {z,y,x}[3 - dims + i].
        a.sel[zyx] = static_cast<std::uint8_t>(3 - out.dims + ix.iter);
      }
    }
    a.scan_pending = stored_arrays.count(slot) > 0;
    out.accesses.push_back(a);
    return static_cast<std::int32_t>(out.accesses.size() - 1);
  }

  void emit_expr(const ir::Expr& e) {
    using ir::ExprKind;
    switch (e.kind) {
      case ExprKind::Number: {
        out.consts.push_back(e.number);
        emit(BcOp::PushConst,
             static_cast<std::int32_t>(out.consts.size() - 1));
        return;
      }
      case ExprKind::ScalarRef: {
        if (const auto it = local_slots.find(e.name);
            it != local_slots.end()) {
          emit(BcOp::PushLocal, it->second);
          return;
        }
        const int slot = scalars->slot(e.name);
        ARTEMIS_CHECK_MSG(slot >= 0, "unbound scalar '" << e.name << "'");
        emit(BcOp::PushScalar, slot);
        return;
      }
      case ExprKind::ArrayRef:
        emit(BcOp::Load, make_access(e.name, e.indices));
        return;
      case ExprKind::Unary:
        emit_expr(*e.args[0]);
        emit(BcOp::Neg);
        return;
      case ExprKind::Binary:
        emit_expr(*e.args[0]);
        emit_expr(*e.args[1]);
        switch (e.bop) {
          case ir::BinOp::Add: emit(BcOp::Add); return;
          case ir::BinOp::Sub: emit(BcOp::Sub); return;
          case ir::BinOp::Mul: emit(BcOp::Mul); return;
          case ir::BinOp::Div: emit(BcOp::Div); return;
        }
        return;
      case ExprKind::Call: {
        for (const auto& a : e.args) emit_expr(*a);
        const auto unary = [&](BcOp op) {
          ARTEMIS_CHECK_MSG(e.args.size() == 1,
                            "intrinsic '" << e.name << "' takes 1 argument");
          emit(op);
        };
        const auto binary = [&](BcOp op) {
          ARTEMIS_CHECK_MSG(e.args.size() == 2,
                            "intrinsic '" << e.name << "' takes 2 arguments");
          emit(op);
        };
        if (e.name == "sqrt") return unary(BcOp::Sqrt);
        if (e.name == "fabs") return unary(BcOp::Fabs);
        if (e.name == "exp") return unary(BcOp::Exp);
        if (e.name == "log") return unary(BcOp::Log);
        if (e.name == "min") return binary(BcOp::Min);
        if (e.name == "max") return binary(BcOp::Max);
        if (e.name == "pow") return binary(BcOp::Pow);
        throw Error(str_cat("unknown intrinsic '", e.name, "'"));
      }
    }
  }
};

}  // namespace

CompiledStencil compile_stmts(const std::vector<ir::Stmt>& stmts, int dims,
                              const SlotMap& arrays, const SlotMap& scalars) {
  ARTEMIS_CHECK(dims >= 1 && dims <= 3);
  Emitter em;
  em.out.dims = dims;
  em.arrays = &arrays;
  em.scalars = &scalars;

  for (const auto& st : stmts) {
    em.emit_expr(*st.rhs);
    if (st.declares_local) {
      const auto [it, inserted] =
          em.local_slots.try_emplace(st.lhs_name, em.out.n_locals);
      if (inserted) ++em.out.n_locals;
      em.emit(BcOp::StoreLocal, it->second);
      continue;
    }
    const std::int32_t access = em.make_access(st.lhs_name, st.lhs_indices);
    em.emit(st.accumulate ? BcOp::StoreAccum : BcOp::Store, access);
    em.stored_arrays.insert(em.out.accesses[static_cast<std::size_t>(access)]
                                .array);
    ++em.out.n_stores;
  }
  ARTEMIS_CHECK(em.depth == 0);
  return em.out;
}

namespace {

struct PendingWrite {
  std::int32_t array;
  std::int64_t z, y, x;
  double v;
};

/// Per-sweep mutable state, reused across points (no per-point allocation).
struct ExecScratch {
  std::vector<double> stack;
  std::vector<double> locals;
  std::vector<PendingWrite> pending;

  explicit ExecScratch(const CompiledStencil& cs)
      : stack(static_cast<std::size_t>(std::max(1, cs.max_stack))),
        locals(static_cast<std::size_t>(std::max(1, cs.n_locals))),
        pending(static_cast<std::size_t>(std::max(1, cs.n_stores))) {}
};

inline std::size_t view_index(const ArrayView& v, std::int64_t z,
                              std::int64_t y, std::int64_t x) {
  return static_cast<std::size_t>(
      ((z - v.lo_z) * v.wy + (y - v.lo_y)) * v.wx + (x - v.lo_x));
}

inline bool in_window(const ArrayView& v, std::int64_t z, std::int64_t y,
                      std::int64_t x) {
  return z >= v.lo_z && z < v.lo_z + v.wz && y >= v.lo_y &&
         y < v.lo_y + v.wy && x >= v.lo_x && x < v.lo_x + v.wx;
}

inline bool in_box(const BcRegion& b, std::int64_t z, std::int64_t y,
                   std::int64_t x) {
  return z >= b.lo[0] && z < b.hi[0] && y >= b.lo[1] && y < b.hi[1] &&
         x >= b.lo[2] && x < b.hi[2];
}

/// Apply the compiled statement list at one point. Returns false when the
/// point is vetoed by an out-of-bounds read (nothing is written, exactly
/// like apply_stmts_at_point). kChecked=false is the interior fast path:
/// bounds are provably satisfied, so guards compile away; counters are
/// still maintained per element because pending-buffer hits (which do not
/// count as reads) are data-dependent.
template <bool kChecked, bool kHooked, bool kCounted = false>
bool exec_point(const CompiledStencil& cs, const ArrayView* views,
                const double* scalars, ExecScratch& st, std::int64_t z,
                std::int64_t y, std::int64_t x, const BcRegion& commit,
                bool drop_outside_commit, BcCounters& c,
                const GlobalAccessHook* hook, StageTrace* trace = nullptr) {
  double* sp = st.stack.data();
  double* locals = st.locals.data();
  PendingWrite* pending = st.pending.data();
  int n_pending = 0;
  const std::int64_t base[4] = {z, y, x, 0};
  const double* consts = cs.consts.data();
  const BcAccess* accesses = cs.accesses.data();

  // Read one element through the pending-write buffer; false = veto.
  const auto read_at = [&](const BcAccess& a, double& value) -> bool {
    const std::int64_t cz = base[a.sel[0]] + a.off[0];
    const std::int64_t cy = base[a.sel[1]] + a.off[1];
    const std::int64_t cx = base[a.sel[2]] + a.off[2];
    if (a.scan_pending) {
      for (int p = n_pending - 1; p >= 0; --p) {
        const PendingWrite& w = pending[p];
        if (w.array == a.array && w.z == cz && w.y == cy && w.x == cx) {
          value = w.v;
          return true;
        }
      }
    }
    const ArrayView& v = views[a.array];
    if constexpr (kChecked) {
      if (cz < 0 || cz >= v.ez || cy < 0 || cy >= v.ey || cx < 0 ||
          cx >= v.ex) {
        return false;  // vetoes the point; not counted, not hooked
      }
      if (v.scratch) {
        ARTEMIS_CHECK_MSG(in_window(v, cz, cy, cx),
                          "internal read of '"
                              << *v.name << "' at (" << cz << "," << cy << ","
                              << cx
                              << ") escapes its scratch region: plan halo "
                                 "geometry is wrong");
      }
    }
    const std::size_t idx = view_index(v, cz, cy, cx);
    value = v.read[idx];
    if (v.scratch) {
      ++c.sreads;
    } else {
      ++c.greads;
      if constexpr (kHooked) (*hook)(*v.name, cz, cy, cx, false);
      if constexpr (kCounted) {
        trace->record(v.elem_base + idx * sizeof(double), /*is_write=*/false);
      }
    }
    return true;
  };

  for (const BcInstr& ins : cs.code) {
    switch (ins.op) {
      case BcOp::PushConst:
        *sp++ = consts[ins.a];
        break;
      case BcOp::PushScalar:
        *sp++ = scalars[ins.a];
        break;
      case BcOp::PushLocal:
        *sp++ = locals[ins.a];
        break;
      case BcOp::Load: {
        double v;
        if (!read_at(accesses[ins.a], v)) return false;
        *sp++ = v;
        break;
      }
      case BcOp::Neg:
        sp[-1] = -sp[-1];
        break;
      case BcOp::Add:
        sp[-2] = sp[-2] + sp[-1];
        --sp;
        break;
      case BcOp::Sub:
        sp[-2] = sp[-2] - sp[-1];
        --sp;
        break;
      case BcOp::Mul:
        sp[-2] = sp[-2] * sp[-1];
        --sp;
        break;
      case BcOp::Div:
        sp[-2] = sp[-2] / sp[-1];
        --sp;
        break;
      case BcOp::Sqrt:
        sp[-1] = std::sqrt(sp[-1]);
        break;
      case BcOp::Fabs:
        sp[-1] = std::fabs(sp[-1]);
        break;
      case BcOp::Exp:
        sp[-1] = std::exp(sp[-1]);
        break;
      case BcOp::Log:
        sp[-1] = std::log(sp[-1]);
        break;
      case BcOp::Min:
        sp[-2] = std::min(sp[-2], sp[-1]);
        --sp;
        break;
      case BcOp::Max:
        sp[-2] = std::max(sp[-2], sp[-1]);
        --sp;
        break;
      case BcOp::Pow:
        sp[-2] = std::pow(sp[-2], sp[-1]);
        --sp;
        break;
      case BcOp::StoreLocal:
        locals[ins.a] = *--sp;
        break;
      case BcOp::Store: {
        const BcAccess& a = accesses[ins.a];
        pending[n_pending++] = {a.array, base[a.sel[0]] + a.off[0],
                                base[a.sel[1]] + a.off[1],
                                base[a.sel[2]] + a.off[2], *--sp};
        break;
      }
      case BcOp::StoreAccum: {
        const BcAccess& a = accesses[ins.a];
        double cur;
        if (!read_at(a, cur)) return false;
        pending[n_pending++] = {a.array, base[a.sel[0]] + a.off[0],
                                base[a.sel[1]] + a.off[1],
                                base[a.sel[2]] + a.off[2], *--sp + cur};
        break;
      }
    }
  }

  // Atomic buffered commit: every read was in bounds, so all writes land,
  // in statement order.
  for (int p = 0; p < n_pending; ++p) {
    const PendingWrite& w = pending[p];
    const ArrayView& v = views[w.array];
    if (v.scratch) {
      if constexpr (kChecked) {
        ARTEMIS_CHECK_MSG(in_window(v, w.z, w.y, w.x),
                          "internal write of '" << *v.name
                                                << "' escapes scratch");
      }
      const std::size_t i = view_index(v, w.z, w.y, w.x);
      v.write[i] = w.v;
      v.written[i] = 1;
      ++c.swrites;
      continue;
    }
    if (drop_outside_commit && !in_box(commit, w.z, w.y, w.x)) continue;
    // Committed external writes are always window-checked (Grid3D::at does
    // the same); stores are few per point, so this stays off the hot reads.
    ARTEMIS_CHECK_MSG(in_window(v, w.z, w.y, w.x),
                      "grid access (" << w.z << "," << w.y << "," << w.x
                                      << ") out of bounds");
    const std::size_t i = view_index(v, w.z, w.y, w.x);
    v.write[i] = w.v;
    ++c.gwrites;
    if constexpr (kHooked) (*hook)(*v.name, w.z, w.y, w.x, true);
    if constexpr (kCounted) {
      trace->record(v.elem_base + i * sizeof(double), /*is_write=*/true);
    }
  }
  return true;
}

}  // namespace

BcRegion interior_region(const CompiledStencil& cs,
                         const std::vector<ArrayView>& views,
                         const BcRegion& region, bool drop_outside_commit,
                         const BcRegion& commit) {
  BcRegion r = region;
  const auto clamp_empty = [&r] {
    r.hi = r.lo;  // canonical empty box
  };

  // Constrain the point coordinate driving access dimension d so that the
  // coordinate stays inside [lo_b, hi_b).
  const auto apply = [&](std::uint8_t sel, std::int64_t off,
                         std::int64_t lo_b, std::int64_t hi_b) {
    if (sel == 3) {
      if (off < lo_b || off >= hi_b) clamp_empty();
      return;
    }
    r.lo[sel] = std::max(r.lo[sel], lo_b - off);
    r.hi[sel] = std::min(r.hi[sel], hi_b - off);
  };

  const auto constrain_read = [&](const BcAccess& a) {
    const ArrayView& v = views[static_cast<std::size_t>(a.array)];
    const std::int64_t e[3] = {v.ez, v.ey, v.ex};
    const std::int64_t wlo[3] = {v.lo_z, v.lo_y, v.lo_x};
    const std::int64_t wext[3] = {v.wz, v.wy, v.wx};
    for (std::size_t d = 0; d < 3; ++d) {
      std::int64_t lo_b = 0, hi_b = e[d];
      if (v.scratch) {  // the rim's escape CHECK must be unreachable here
        lo_b = std::max(lo_b, wlo[d]);
        hi_b = std::min(hi_b, wlo[d] + wext[d]);
      }
      apply(a.sel[d], a.off[d], lo_b, hi_b);
    }
  };

  const auto constrain_store = [&](const BcAccess& a) {
    const ArrayView& v = views[static_cast<std::size_t>(a.array)];
    // External stores window-check at commit time on every path (they are
    // rare per point), so only scratch stores shrink the interior.
    if (!v.scratch) return;
    const std::int64_t wlo[3] = {v.lo_z, v.lo_y, v.lo_x};
    const std::int64_t wext[3] = {v.wz, v.wy, v.wx};
    for (std::size_t d = 0; d < 3; ++d) {
      apply(a.sel[d], a.off[d], wlo[d], wlo[d] + wext[d]);
    }
  };

  for (const BcInstr& ins : cs.code) {
    switch (ins.op) {
      case BcOp::Load:
        constrain_read(cs.accesses[static_cast<std::size_t>(ins.a)]);
        break;
      case BcOp::StoreAccum:
        constrain_read(cs.accesses[static_cast<std::size_t>(ins.a)]);
        constrain_store(cs.accesses[static_cast<std::size_t>(ins.a)]);
        break;
      case BcOp::Store:
        constrain_store(cs.accesses[static_cast<std::size_t>(ins.a)]);
        break;
      default:
        break;
    }
    if (r.empty()) break;
  }
  if (r.empty()) clamp_empty();
  (void)drop_outside_commit;
  (void)commit;
  return r;
}

namespace {

/// The interior/rim split sweep shared by the plain and counting paths.
/// Interior accesses charge `ci`, rim accesses `cr` — the plain path
/// aliases both to the caller's counter so the split is free; the
/// counting path keeps them apart for per-block-class metrics.
template <bool kCounted>
void run_split_region(const CompiledStencil& cs,
                      const std::vector<ArrayView>& views,
                      const double* scalars, const BcRegion& region,
                      const BcRegion& commit, bool drop_outside_commit,
                      ExecScratch& st, BcCounters& ci, BcCounters& cr,
                      StageTrace* trace) {
  const ArrayView* vp = views.data();
  const BcRegion in =
      interior_region(cs, views, region, drop_outside_commit, commit);

  const auto rim_run = [&](std::int64_t z, std::int64_t y, std::int64_t x0,
                           std::int64_t x1) {
    for (std::int64_t x = x0; x < x1; ++x) {
      if (exec_point<true, false, kCounted>(cs, vp, scalars, st, z, y, x,
                                            commit, drop_outside_commit, cr,
                                            nullptr, trace)) {
        ++cr.computed;
      } else {
        ++cr.skipped;
      }
    }
  };

  for (std::int64_t z = region.lo[0]; z < region.hi[0]; ++z) {
    const bool z_in = z >= in.lo[0] && z < in.hi[0];
    for (std::int64_t y = region.lo[1]; y < region.hi[1]; ++y) {
      if (!z_in || y < in.lo[1] || y >= in.hi[1]) {
        rim_run(z, y, region.lo[2], region.hi[2]);
        continue;
      }
      rim_run(z, y, region.lo[2], in.lo[2]);
      for (std::int64_t x = in.lo[2]; x < in.hi[2]; ++x) {
        exec_point<false, false, kCounted>(cs, vp, scalars, st, z, y, x,
                                           commit, drop_outside_commit, ci,
                                           nullptr, trace);
      }
      ci.computed += in.hi[2] - in.lo[2];  // interior points never veto
      rim_run(z, y, in.hi[2], region.hi[2]);
    }
  }
}

}  // namespace

void run_compiled_region(const CompiledStencil& cs,
                         const std::vector<ArrayView>& views,
                         const double* scalars, const BcRegion& region,
                         const BcRegion& commit, bool drop_outside_commit,
                         BcCounters& c, const GlobalAccessHook* hook,
                         StageTrace* trace) {
  if (region.empty()) return;
  ExecScratch st(cs);
  const ArrayView* vp = views.data();

  if (hook) {
    ARTEMIS_CHECK_MSG(trace == nullptr,
                      "counting mode and the global-access hook are "
                      "mutually exclusive");
    // Trace mode: every point fully checked and hooked, in row-major
    // order, matching the tree walk's deterministic access stream.
    for (std::int64_t z = region.lo[0]; z < region.hi[0]; ++z) {
      for (std::int64_t y = region.lo[1]; y < region.hi[1]; ++y) {
        for (std::int64_t x = region.lo[2]; x < region.hi[2]; ++x) {
          if (exec_point<true, true>(cs, vp, scalars, st, z, y, x, commit,
                                     drop_outside_commit, c, hook)) {
            ++c.computed;
          } else {
            ++c.skipped;
          }
        }
      }
    }
    return;
  }

  if (trace != nullptr) {
    // Counting mode: identical execution, with interior/rim accesses
    // accumulated apart and the global line stream recorded. The caller's
    // counter receives the exact same totals as a plain run.
    trace->flops_per_point = cs.flops_per_point;
    // Pre-size the line stream: one entry per load plus a write per point
    // is a tight upper bound (merging only shrinks it), and it keeps the
    // hot push_back from ever reallocating mid-sweep.
    const std::int64_t pts = (region.hi[0] - region.lo[0]) *
                             (region.hi[1] - region.lo[1]) *
                             (region.hi[2] - region.lo[2]);
    trace->lines.reserve(trace->lines.size() +
                         static_cast<std::size_t>(pts) *
                             (cs.accesses.size() + 1));
    BcCounters ci, cr;
    run_split_region<true>(cs, views, scalars, region, commit,
                           drop_outside_commit, st, ci, cr, trace);
    trace->interior += ci;
    trace->rim += cr;
    c += ci;
    c += cr;
    return;
  }

  run_split_region<false>(cs, views, scalars, region, commit,
                          drop_outside_commit, st, c, c, nullptr);
}

struct RimRunner::Impl {
  const CompiledStencil& cs;
  const std::vector<ArrayView>& views;
  const double* scalars;
  BcRegion commit;
  bool drop;
  ExecScratch st;

  Impl(const CompiledStencil& c, const std::vector<ArrayView>& v,
       const double* s, const BcRegion& cb, bool d)
      : cs(c), views(v), scalars(s), commit(cb), drop(d), st(c) {}
};

RimRunner::RimRunner(const CompiledStencil& cs,
                     const std::vector<ArrayView>& views,
                     const double* scalars, const BcRegion& commit,
                     bool drop_outside_commit)
    : impl_(std::make_unique<Impl>(cs, views, scalars, commit,
                                   drop_outside_commit)) {}

RimRunner::~RimRunner() = default;

void RimRunner::run(std::int64_t z, std::int64_t y, std::int64_t x0,
                    std::int64_t x1, BcCounters& c, StageTrace* trace) {
  Impl& im = *impl_;
  const ArrayView* vp = im.views.data();
  if (trace != nullptr) {
    for (std::int64_t x = x0; x < x1; ++x) {
      if (exec_point<true, false, true>(im.cs, vp, im.scalars, im.st, z, y,
                                        x, im.commit, im.drop, c, nullptr,
                                        trace)) {
        ++c.computed;
      } else {
        ++c.skipped;
      }
    }
    return;
  }
  for (std::int64_t x = x0; x < x1; ++x) {
    if (exec_point<true, false, false>(im.cs, vp, im.scalars, im.st, z, y, x,
                                       im.commit, im.drop, c, nullptr)) {
      ++c.computed;
    } else {
      ++c.skipped;
    }
  }
}

bool needs_snapshot(const ir::ArrayAccessInfo& ai, int dims, bool recompute) {
  if (!ai.read || !ai.written) return false;
  bool non_center = false;
  for (const auto& off : ai.read_offsets) {
    for (const auto& ix : off) {
      if (ix.is_const() || ix.offset != 0) non_center = true;
    }
  }
  if (!non_center) return false;
  if (recompute) return true;  // overlapped tiling recomputes points
  // Aliasing-free: one canonical index vector (dim d driven by iterator d,
  // full coverage) shared by every read and write means a read at point p
  // can only resolve to p's own write, which the pending buffer handles.
  if (ai.dims != dims || ai.write_offsets.empty()) return true;
  const auto& ref = ai.write_offsets.front();
  if (static_cast<int>(ref.size()) != dims) return true;
  for (int d = 0; d < dims; ++d) {
    if (ref[static_cast<std::size_t>(d)].iter != d) return true;
  }
  for (const auto& w : ai.write_offsets) {
    if (w != ref) return true;
  }
  for (const auto& r : ai.read_offsets) {
    if (r != ref) return true;
  }
  return false;
}

}  // namespace artemis::sim
