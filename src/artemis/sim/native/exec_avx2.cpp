// AVX2 tier: 4-wide double lanes. This translation unit (alone) is
// compiled with -mavx2 -mfma; everything it defines lives in an anonymous
// namespace so no AVX-encoded symbol can be linker-folded into another
// tier's dispatch path.
//
// Strict-mode lane ops are chosen to be IEEE-identical to the scalar
// operators, including the cases raw vector min/max get wrong:
// VMINPD/VMAXPD return the second operand on NaN and order ±0
// differently, so Min/Max are expressed as compare + blend exactly like
// `b < a ? b : a`. Negation and fabs are sign-bit XOR/ANDNOT — the same
// bit operation the scalar codegen performs. Exp/Log/Pow have no exact
// vector form, so they run libm lane-wise through a store/compute/load
// bounce, preserving bit-identity at vector cost only for the
// transcendental kernels.

#include "artemis/sim/native/native.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

namespace artemis::sim::native {
namespace {

struct Backend {
  static constexpr std::int64_t kWidth = 4;
  using Vec = __m256d;
  static Vec broadcast(double v) { return _mm256_set1_pd(v); }
  static Vec loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Vec add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) { return _mm256_div_pd(a, b); }
  static Vec min_(Vec a, Vec b) {
    return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
  }
  static Vec max_(Vec a, Vec b) {
    return _mm256_blendv_pd(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
  }
  static Vec neg(Vec a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static Vec fabs_(Vec a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static Vec sqrt_(Vec a) { return _mm256_sqrt_pd(a); }
  static Vec exp_(Vec a) {
    alignas(32) double b[4];
    _mm256_store_pd(b, a);
    for (double& x : b) x = std::exp(x);
    return _mm256_load_pd(b);
  }
  static Vec log_(Vec a) {
    alignas(32) double b[4];
    _mm256_store_pd(b, a);
    for (double& x : b) x = std::log(x);
    return _mm256_load_pd(b);
  }
  static Vec pow_(Vec a, Vec b) {
    alignas(32) double ba[4], bb[4];
    _mm256_store_pd(ba, a);
    _mm256_store_pd(bb, b);
    for (int l = 0; l < 4; ++l) ba[l] = std::pow(ba[l], bb[l]);
    return _mm256_load_pd(ba);
  }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }
  static Vec fmsub(Vec a, Vec b, Vec c) { return _mm256_fmsub_pd(a, b, c); }
  static Vec fnmadd(Vec a, Vec b, Vec c) {
    return _mm256_fnmadd_pd(a, b, c);
  }
};

#include "artemis/sim/native/exec_common.inl"

}  // namespace

void run_box_avx2(const LinearProgram& lp, const ArrayView* views,
                  const double* scalars, const BcRegion& box,
                  const BcRegion& commit, bool drop_outside_commit) {
  run_box_impl<Backend>(lp, views, scalars, box, commit,
                        drop_outside_commit);
}

}  // namespace artemis::sim::native

#else  // non-x86 or AVX2 not enabled for this TU: degrade to scalar.

namespace artemis::sim::native {

void run_box_avx2(const LinearProgram& lp, const ArrayView* views,
                  const double* scalars, const BcRegion& box,
                  const BcRegion& commit, bool drop_outside_commit) {
  run_box_scalar(lp, views, scalars, box, commit, drop_outside_commit);
}

}  // namespace artemis::sim::native

#endif
