file(REMOVE_RECURSE
  "CMakeFiles/fission_rhs4sgcurv.dir/fission_rhs4sgcurv.cpp.o"
  "CMakeFiles/fission_rhs4sgcurv.dir/fission_rhs4sgcurv.cpp.o.d"
  "fission_rhs4sgcurv"
  "fission_rhs4sgcurv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fission_rhs4sgcurv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
