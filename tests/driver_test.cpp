#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "artemis/driver/context.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/storage/vfs.hpp"
#include "test_programs.hpp"

namespace artemis::driver {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

TEST_F(DriverTest, IterativeScheduleCoversAllSteps) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 256);
  const auto r = optimize_program(prog, dev_, params_);
  int total = 0;
  for (const int x : r.fusion_schedule) total += x;
  EXPECT_EQ(total, 12);  // T = 12
  ASSERT_TRUE(r.deep_tuning.has_value());
  EXPECT_GE(r.deep_tuning->entries.size(), 2u);
  EXPECT_GT(r.tflops, 0.0);
  int invocations = 0;
  for (const auto& k : r.kernels) invocations += k.invocations;
  EXPECT_EQ(invocations, static_cast<int>(r.fusion_schedule.size()));
}

TEST_F(DriverTest, ArtemisBeatsUnfusedGlobalOnIterative) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto global = optimize_program(prog, dev_, params_,
                                       global_strategy(false));
  const auto stream = optimize_program(prog, dev_, params_,
                                       global_strategy(true));
  EXPECT_GT(artemis.tflops, global.tflops);
  // Section VIII-F: streaming without shared memory has worse locality
  // than plain 3D tiling.
  EXPECT_GT(global.tflops, stream.tflops);
}

TEST_F(DriverTest, OrderingMatchesFigure5) {
  // PPCG < STENCILGEN < ARTEMIS on iterative stencils.
  const auto prog = stencils::benchmark_program("27pt-smoother", 512);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto sg = optimize_program(prog, dev_, params_,
                                   stencilgen_strategy());
  const auto ppcg = optimize_program(prog, dev_, params_, ppcg_strategy());
  EXPECT_GT(artemis.tflops, sg.tflops);
  EXPECT_GT(sg.tflops, ppcg.tflops);
}

TEST_F(DriverTest, StencilgenRejectsMixedDims) {
  const auto prog = stencils::benchmark_program("addsgd4", 128);
  EXPECT_THROW(
      optimize_program(prog, dev_, params_, stencilgen_strategy()), Error);
}

TEST_F(DriverTest, FissionTriggersForRegisterBoundKernel) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 320);
  const auto r = optimize_program(prog, dev_, params_);
  // The monolithic kernel spills at 255 registers; ARTEMIS must emit
  // fission candidates and adopt a multi-kernel schedule.
  EXPECT_FALSE(r.candidate_dsl.empty());
  EXPECT_GT(r.kernels.size(), 1u);
  // Fissioned sub-kernels are spill-free.
  for (const auto& k : r.kernels) {
    EXPECT_EQ(k.eval.regs.spilled(k.config.max_registers), 0) << k.name;
  }
}

TEST_F(DriverTest, FissionCandidateDslReparses) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 128);
  const auto r = optimize_program(prog, dev_, params_);
  ASSERT_FALSE(r.candidate_dsl.empty());
  for (const auto& text : r.candidate_dsl) {
    EXPECT_NO_THROW(dsl::parse(text));
  }
}

TEST_F(DriverTest, ExpertAssignBeatsNaiveDefault) {
  // Section VIII-E: addsgd4 with #assign outperforms the naive default
  // that stages every array (including the 1D coefficients, in tile-shaped
  // buffers) in shared memory. The comparison isolates resource
  // assignment, so the profiling-driven fallback to the global version is
  // disabled like the paper's experiment.
  Strategy s = artemis_strategy();
  s.profile_guided = false;
  const auto with = dsl::parse(stencils::addsgd_dsl(320, 2, true));
  const auto without = dsl::parse(stencils::addsgd_dsl(320, 2, false));
  const auto r_with = optimize_program(with, dev_, params_, s);
  const auto r_without = optimize_program(without, dev_, params_, s);
  EXPECT_GT(r_with.tflops, r_without.tflops * 1.1);
}

TEST_F(DriverTest, HyptermSharedMatchesGlobal) {
  // Section VIII-F: hypterm stays DRAM-bound with shared memory; ARTEMIS
  // must fall back to (or match) the tuned global version.
  const auto prog = stencils::benchmark_program("hypterm", 320);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto global = optimize_program(prog, dev_, params_,
                                       global_strategy(false));
  EXPECT_GE(artemis.tflops, global.tflops * 0.95);
}

TEST_F(DriverTest, HintsSurface) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto r = optimize_program(prog, dev_, params_);
  // The bandwidth-bound baseline must produce at least one guideline.
  EXPECT_FALSE(r.hints.empty());
}

TEST_F(DriverTest, LaunchOverheadCounted) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  gpumodel::ModelParams heavy = params_;
  heavy.launch_overhead_s = 1.0;  // absurd: launches dominate
  const auto r = optimize_program(prog, dev_, heavy);
  EXPECT_GT(r.time_s, static_cast<double>(r.kernel_launches) * 0.99);
}

TEST_F(DriverTest, HalideAutoschedulerGapGrowsWithComplexity) {
  // Section I: the autoscheduler stays close on simple stencils but loses
  // ~2x+ on complex register-bound kernels.
  const auto simple = stencils::benchmark_program("27pt-smoother", 256);
  const auto complex_prog = stencils::benchmark_program("rhs4sgcurv", 320);
  const auto ha = halide_auto_strategy();
  const double gap_simple =
      optimize_program(simple, dev_, params_).tflops /
      optimize_program(simple, dev_, params_, ha).tflops;
  const double gap_complex =
      optimize_program(complex_prog, dev_, params_).tflops /
      optimize_program(complex_prog, dev_, params_, ha).tflops;
  EXPECT_LT(gap_simple, 1.6);
  EXPECT_GT(gap_complex, 2.0);
}

TEST_F(DriverTest, AllBenchmarksRunUnderAllStrategies) {
  for (const auto& spec : stencils::paper_benchmarks()) {
    const auto prog = stencils::benchmark_program(spec.name, 96, 4);
    for (const auto& strat :
         {artemis_strategy(), ppcg_strategy(), stencilgen_strategy(),
          global_strategy(false), global_strategy(true)}) {
      try {
        const auto r = optimize_program(prog, dev_, params_, strat);
        EXPECT_GT(r.tflops, 0.0) << spec.name << "/" << strat.name;
        EXPECT_GT(r.time_s, 0.0) << spec.name << "/" << strat.name;
      } catch (const Error&) {
        // Only STENCILGEN may reject (mixed dims).
        EXPECT_EQ(strat.name, "stencilgen") << spec.name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ArtemisContext reentrancy: the library must hold no process-global
// mutable state, so independent contexts driven from interleaved threads
// produce exactly the plans sequential runs do.
// ---------------------------------------------------------------------------

std::string context_tune_bytes(const char* device, const char* source) {
  storage::MemVfs vfs;
  ContextOptions opts;
  opts.device = device_by_name(device);
  opts.vfs = &vfs;
  opts.store_root = "store";
  opts.jobs = 1;
  ArtemisContext ctx(opts);
  return ctx.tune(source).plan_bytes;
}

TEST(DriverContextTest, InterleavedContextsMatchSequentialPlans) {
  const std::string seq_p100 =
      context_tune_bytes("p100", testing::kJacobiDsl);
  const std::string seq_v100 = context_tune_bytes("v100", testing::kDagDsl);
  ASSERT_FALSE(seq_p100.empty());
  ASSERT_NE(seq_p100, seq_v100);

  for (int round = 0; round < 3; ++round) {
    std::string got_p100, got_v100;
    std::thread a([&] {
      got_p100 = context_tune_bytes("p100", testing::kJacobiDsl);
    });
    std::thread b([&] {
      got_v100 = context_tune_bytes("v100", testing::kDagDsl);
    });
    a.join();
    b.join();
    EXPECT_EQ(got_p100, seq_p100) << "round " << round;
    EXPECT_EQ(got_v100, seq_v100) << "round " << round;
  }
}

TEST(DriverContextTest, OneContextServesConcurrentTunesLikeSequential) {
  const std::string ref_jacobi =
      context_tune_bytes("p100", testing::kJacobiDsl);
  const std::string ref_dag = context_tune_bytes("p100", testing::kDagDsl);

  storage::MemVfs vfs;
  ContextOptions opts;
  opts.vfs = &vfs;
  opts.store_root = "store";
  opts.cache_path = "cache/tuning.cache";
  opts.jobs = 1;
  ArtemisContext ctx(opts);
  std::string got_jacobi, got_dag;
  std::thread a([&] { got_jacobi = ctx.tune(testing::kJacobiDsl).plan_bytes; });
  std::thread b([&] { got_dag = ctx.tune(testing::kDagDsl).plan_bytes; });
  a.join();
  b.join();
  EXPECT_EQ(got_jacobi, ref_jacobi);
  EXPECT_EQ(got_dag, ref_dag);

  const auto stats = ctx.stats();
  EXPECT_EQ(stats.tunes, 2u);
  EXPECT_EQ(stats.tuner_runs, 2u);
  ASSERT_NE(ctx.store(), nullptr);
  EXPECT_EQ(ctx.store()->keys().size(), 2u);
}

#ifdef ARTEMIS_SOURCE_DIR
// Source-level tripwire behind the reentrancy guarantee: no mutable
// static data — `static`/`thread_local` variables at namespace or
// function scope — anywhere in the driver library or the service layer.
// Immutable statics (`static const`/`static constexpr`) and static
// member *functions* (their declarations carry a parameter list) are
// fine; stateful ones are exactly what would make two contexts
// interfere.
TEST(DriverContextTest, NoMutableStaticStateInDriverOrService) {
  namespace fs = std::filesystem;
  const std::string roots[] = {
      std::string(ARTEMIS_SOURCE_DIR) + "/artemis/driver",
      std::string(ARTEMIS_SOURCE_DIR) + "/artemis/service"};
  std::vector<std::string> violations;
  int files_scanned = 0;
  for (const auto& root : roots) {
    ASSERT_TRUE(fs::is_directory(root)) << root;
    for (const auto& entry : fs::directory_iterator(root)) {
      const std::string path = entry.path().string();
      if (path.size() < 4 || (path.substr(path.size() - 4) != ".cpp" &&
                              path.substr(path.size() - 4) != ".hpp")) {
        continue;
      }
      ++files_scanned;
      std::ifstream in(path);
      ASSERT_TRUE(in.good()) << path;
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        const std::size_t comment = line.find("//");
        std::string code =
            comment == std::string::npos ? line : line.substr(0, comment);
        for (const char* keyword : {"static", "thread_local"}) {
          const std::size_t pos = code.find(keyword);
          if (pos == std::string::npos) continue;
          // Token boundaries: reject static_cast / static_assert /
          // identifiers merely containing the keyword.
          const std::size_t end = pos + std::string(keyword).size();
          if (pos > 0 && (std::isalnum(code[pos - 1]) || code[pos - 1] == '_'))
            continue;
          if (end < code.size() &&
              (std::isalnum(code[end]) || code[end] == '_'))
            continue;
          // Immutable statics are allowed.
          std::size_t after = end;
          while (after < code.size() && std::isspace(code[after])) ++after;
          if (code.compare(after, 5, "const") == 0) continue;
          // A parameter list on the same line marks a static member
          // function declaration, which carries no state.
          if (code.find('(', end) != std::string::npos) continue;
          violations.push_back(path + ":" + std::to_string(lineno) + ": " +
                               line);
        }
      }
    }
  }
  EXPECT_GE(files_scanned, 8);
  EXPECT_TRUE(violations.empty())
      << "mutable static state in the reentrant layers:\n"
      << [&] {
           std::ostringstream os;
           for (const auto& v : violations) os << "  " << v << "\n";
           return os.str();
         }();
}
#endif  // ARTEMIS_SOURCE_DIR

}  // namespace
}  // namespace artemis::driver
