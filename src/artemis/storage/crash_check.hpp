#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::storage {

/// One crash state that violated the invariant.
struct CrashCheckFailure {
  std::size_t op_index = 0;   ///< the workload crashed before op k
  std::uint64_t variant = 0;  ///< which writeback variant (MemVfs::crash)
  std::string what;           ///< the invariant's complaint
};

struct CrashSweepReport {
  std::size_t ops = 0;     ///< recorded trace length
  std::size_t states = 0;  ///< (k, variant) recovery states checked
  std::vector<CrashCheckFailure> failures;
  bool ok() const { return failures.empty(); }
  /// "checked 312 crash states over 52 ops: OK" or the first failures.
  std::string summary() const;
};

/// An invariant over one recovered filesystem. Returns "" when satisfied,
/// a human-readable complaint otherwise. May mutate the filesystem (run
/// recovery, do probe writes): each invocation gets its own replayed
/// MemVfs.
using CrashInvariant = std::function<std::string(MemVfs&)>;

/// The mini-ALICE sweep: for every prefix [0, k) of `trace` (k = 0..N)
/// and every writeback variant, rebuild the filesystem a crash at that
/// instant could leave behind (replay_prefix) and run `check` on it.
/// Exhaustive over crash points by construction — if this passes, no
/// single power-cut instant in the recorded workload breaks the invariant
/// under any of the modeled writeback behaviors.
CrashSweepReport crash_sweep(const std::vector<VfsOp>& trace,
                             const std::vector<std::uint64_t>& variants,
                             const CrashInvariant& check);

/// The variants used by default: nothing-written-back (0),
/// everything-written-back (1), and three hash-mixed partial writebacks.
std::vector<std::uint64_t> default_crash_variants();

/// The plan store's recovery invariant, for composing into a
/// CrashInvariant. Checks, on the recovered filesystem rooted at `root`:
///
///   1. every published record decodes Ok and is byte-faithful to the
///      entry in `expected` with the same key (zero corrupted or
///      mutated entries — at most the in-flight record is missing);
///   2. opening the store succeeds (recovery sweeps temps, never throws);
///   3. after recovery every published key get()s back Ok;
///   4. a fresh put/get round-trips (the store still works).
///
/// Returns "" or the first violation.
std::string check_plan_store_state(
    MemVfs& vfs, const std::string& root,
    const std::map<std::string, PlanRecord>& expected);

}  // namespace artemis::storage
