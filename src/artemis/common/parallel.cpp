#include "artemis/common/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace artemis {

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto workers = static_cast<std::int64_t>(hw);
  if (n < 4 || workers < 2) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::int64_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (std::int64_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      try {
        for (;;) {
          const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          fn(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace artemis
