#include "artemis/verify/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"

namespace artemis::verify {

namespace fs = std::filesystem;

namespace {

/// Keep the header single-line: reproducer details may quote program
/// text or grid dumps with embedded newlines/tabs.
std::string sanitize_line(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\n' || c == '\r' || c == '\t') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// "// key: value" -> value, or nullopt when the line is something else.
std::optional<std::string> header_value(const std::string& line,
                                        const std::string& key) {
  const std::string prefix = "// " + key + ": ";
  if (!starts_with(line, prefix)) return std::nullopt;
  return line.substr(prefix.size());
}

}  // namespace

std::string write_reproducer(const std::string& dir, Property property,
                             std::uint64_t seed, const std::string& detail,
                             const ir::Program& prog) {
  fs::create_directories(dir);
  const std::string name = str_cat(property_name(property), "-", seed,
                                   ".dsl");
  const fs::path path = fs::path(dir) / name;
  std::ofstream out(path);
  ARTEMIS_CHECK_MSG(out.good(), "cannot write reproducer " << path.string());
  out << "// artemis-verify reproducer\n"
      << "// property: " << property_name(property) << "\n"
      << "// seed: " << seed << "\n"
      << "// detail: " << sanitize_line(detail) << "\n"
      << dsl::print_program(prog);
  return path.string();
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  if (!fs::is_directory(dir)) return entries;
  std::vector<fs::path> files;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.is_regular_file() && de.path().extension() == ".dsl") {
      files.push_back(de.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    CorpusEntry e;
    e.path = path.string();
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    e.dsl_text = buf.str();

    std::istringstream lines(e.dsl_text);
    std::string line;
    bool have_property = false, have_seed = false;
    while (std::getline(lines, line) && starts_with(line, "//")) {
      if (const auto v = header_value(line, "property")) {
        if (const auto p = property_by_name(*v)) {
          e.property = *p;
          have_property = true;
        }
      } else if (const auto s = header_value(line, "seed")) {
        try {
          e.seed = std::stoull(*s);
          have_seed = true;
        } catch (const std::exception&) {
          // fall through to the header error below
        }
      } else if (const auto d = header_value(line, "detail")) {
        e.detail = *d;
      }
    }
    if (!have_property || !have_seed) {
      e.detail = str_cat("malformed reproducer header in ", e.path,
                         " (need '// property: <name>' and '// seed: <n>')");
      e.dsl_text.clear();  // signals replay_entry to fail
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

CheckResult replay_entry(const CorpusEntry& entry) {
  if (entry.dsl_text.empty()) {
    return {false, entry.detail.empty()
                       ? str_cat("unreadable reproducer ", entry.path)
                       : entry.detail};
  }
  ir::Program prog;
  try {
    prog = dsl::parse(entry.dsl_text);
  } catch (const Error& e) {
    return {false, str_cat(entry.path, ": reproducer no longer parses: ",
                           e.what())};
  }
  CheckResult r = check_property(entry.property, prog, entry.seed);
  if (!r.ok) {
    r.detail = str_cat(entry.path, ": ", r.detail);
  }
  return r;
}

}  // namespace artemis::verify
