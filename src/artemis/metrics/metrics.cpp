#include "artemis/metrics/metrics.hpp"

#include <algorithm>
#include <unordered_set>

#include "artemis/common/check.hpp"
#include "artemis/gpumodel/cache_sim.hpp"

namespace artemis::metrics {

namespace {

/// Replay accumulator for one metrics scope (a stage or the aggregate):
/// folds tagged line-stream entries into request counts, uniqueness sets
/// and the cache simulation.
struct Replay {
  gpumodel::CacheSim sim;
  std::uint64_t line_bytes;
  std::int64_t read_requests = 0;
  std::int64_t write_requests = 0;
  std::int64_t read_misses = 0;
  std::unordered_set<std::uint64_t> read_lines;
  std::unordered_set<std::uint64_t> write_lines;

  Replay(std::int64_t capacity, int line)
      : sim(capacity, line), line_bytes(static_cast<std::uint64_t>(line)) {}

  void feed(const std::vector<std::uint32_t>& lines) {
    for (const std::uint32_t entry : lines) {
      const bool is_write = (entry & sim::kTraceWriteBit) != 0;
      const std::uint64_t line = entry & ~sim::kTraceWriteBit;
      const bool hit = sim.access(line * line_bytes);
      if (is_write) {
        ++write_requests;
        write_lines.insert(line);
      } else {
        ++read_requests;
        if (!hit) ++read_misses;
        read_lines.insert(line);
      }
    }
  }

  void finish(StageMetrics& m) const {
    const auto lb = static_cast<std::int64_t>(line_bytes);
    m.read_line_requests = read_requests;
    m.write_line_requests = write_requests;
    m.unique_read_lines = static_cast<std::int64_t>(read_lines.size());
    m.unique_write_lines = static_cast<std::int64_t>(write_lines.size());
    std::int64_t uni = m.unique_read_lines;
    for (const std::uint64_t line : write_lines) {
      if (!read_lines.count(line)) ++uni;
    }
    m.unique_lines = uni;
    m.tex_bytes = read_requests * lb;
    m.dram_read_bytes = read_misses * lb;
    m.dram_write_bytes = m.unique_write_lines * lb;
    m.working_set_bytes = m.unique_lines * lb;
    m.l2_hit_rate = sim.hit_rate();
    m.redundant_load_fraction =
        read_requests > 0
            ? 1.0 - static_cast<double>(m.unique_read_lines) / read_requests
            : 0.0;
  }
};

void fold_counters(StageMetrics& m, const sim::StageTrace& t) {
  m.interior_points += t.interior.computed;
  m.rim_points += t.rim.computed;
  m.skipped_points += t.interior.skipped + t.rim.skipped;
  m.interior_flops += t.flops_per_point * t.interior.computed;
  m.rim_flops += t.flops_per_point * t.rim.computed;
  m.flops = m.interior_flops + m.rim_flops;
  m.global_read_elems += t.interior.greads + t.rim.greads;
  m.global_write_elems += t.interior.gwrites + t.rim.gwrites;
  m.scratch_read_elems += t.interior.sreads + t.rim.sreads;
  m.scratch_write_elems += t.interior.swrites + t.rim.swrites;
  m.shm_bytes = (m.scratch_read_elems + m.scratch_write_elems) *
                static_cast<std::int64_t>(sizeof(double));
}

}  // namespace

PlanMetrics measure_plan(const codegen::KernelPlan& plan, sim::GridSet& gs,
                         const gpumodel::DeviceSpec& dev,
                         const sim::ExecOptions& base) {
  ARTEMIS_CHECK_MSG(!base.global_hook,
                    "measure_plan cannot run with a global-access hook");
  sim::PlanTrace trace;
  sim::ExecOptions opts = base;
  opts.engine = sim::SimEngine::Bytecode;
  opts.trace = &trace;

  PlanMetrics pm;
  pm.exec = sim::execute_plan(plan, gs, opts);
  pm.line_bytes = trace.line_bytes;

  // The replayed cache models the device L2 at the trace's line size.
  Replay total_replay(dev.l2_bytes, trace.line_bytes);
  pm.totals.name = "total";

  pm.stages.reserve(trace.stages.size());
  for (std::size_t s = 0; s < trace.stages.size(); ++s) {
    const sim::StageTrace& t = trace.stages[s];
    StageMetrics m;
    m.name = s < plan.stages.size() ? plan.stages[s].name : "";
    fold_counters(m, t);
    Replay replay(dev.l2_bytes, trace.line_bytes);
    replay.feed(t.lines);
    replay.finish(m);
    fold_counters(pm.totals, t);
    total_replay.feed(t.lines);
    pm.stages.push_back(std::move(m));
  }
  // Materialized-internal write-backs: pure global stores, attributed to
  // the aggregate only (they happen after the stage sweeps).
  fold_counters(pm.totals, trace.writeback);
  total_replay.feed(trace.writeback.lines);
  total_replay.finish(pm.totals);
  pm.l2_capacity_bytes = total_replay.sim.capacity_bytes();

  // Per-array attribution: arrays are disjoint, line-aligned, slot-ordered
  // ranges of the flat address space, so a binary search on the byte
  // address places every line.
  if (!trace.arrays.empty()) {
    std::vector<ArrayMetrics> per_array(trace.arrays.size());
    std::vector<std::unordered_set<std::uint64_t>> seen(trace.arrays.size());
    std::vector<std::uint64_t> bases;
    bases.reserve(trace.arrays.size());
    for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
      per_array[i].name = trace.arrays[i].name;
      bases.push_back(trace.arrays[i].elem_base);
    }
    const auto attribute = [&](const std::vector<std::uint32_t>& lines) {
      for (const std::uint32_t entry : lines) {
        const bool is_write = (entry & sim::kTraceWriteBit) != 0;
        const std::uint64_t line = entry & ~sim::kTraceWriteBit;
        const std::uint64_t addr =
            line * static_cast<std::uint64_t>(pm.line_bytes);
        const auto it = std::upper_bound(bases.begin(), bases.end(), addr);
        const auto idx = static_cast<std::size_t>(it - bases.begin()) - 1;
        if (is_write) {
          ++per_array[idx].write_line_requests;
        } else {
          ++per_array[idx].read_line_requests;
        }
        seen[idx].insert(line);
      }
    };
    for (const auto& t : trace.stages) attribute(t.lines);
    attribute(trace.writeback.lines);
    for (std::size_t i = 0; i < per_array.size(); ++i) {
      per_array[i].working_set_bytes =
          static_cast<std::int64_t>(seen[i].size()) * pm.line_bytes;
    }
    pm.arrays = std::move(per_array);
  }
  return pm;
}

}  // namespace artemis::metrics
