file(REMOVE_RECURSE
  "CMakeFiles/extra_2d_suite.dir/extra_2d_suite.cpp.o"
  "CMakeFiles/extra_2d_suite.dir/extra_2d_suite.cpp.o.d"
  "extra_2d_suite"
  "extra_2d_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_2d_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
