file(REMOVE_RECURSE
  "CMakeFiles/perf_behavior_test.dir/perf_behavior_test.cpp.o"
  "CMakeFiles/perf_behavior_test.dir/perf_behavior_test.cpp.o.d"
  "perf_behavior_test"
  "perf_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
