file(REMOVE_RECURSE
  "CMakeFiles/extra_stencils_test.dir/extra_stencils_test.cpp.o"
  "CMakeFiles/extra_stencils_test.dir/extra_stencils_test.cpp.o.d"
  "extra_stencils_test"
  "extra_stencils_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_stencils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
