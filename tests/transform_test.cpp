#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/transform/fission.hpp"
#include "artemis/transform/fold.hpp"
#include "artemis/transform/fusion.hpp"
#include "artemis/transform/retime.hpp"
#include "test_programs.hpp"

namespace artemis::transform {
namespace {

using artemis::testing::kJacobiDsl;
using artemis::testing::kJacobiIterativeDsl;

ir::Program parse(const char* src) { return dsl::parse(src); }

/// Max abs diff over the interior shrunk by `margin` on every axis that
/// has extent > 2*margin.
double max_abs_diff_interior(const Grid3D& a, const Grid3D& b,
                             std::int64_t margin) {
  const auto& e = a.extents();
  const std::int64_t mz = e.z > 2 * margin ? margin : 0;
  const std::int64_t my = e.y > 2 * margin ? margin : 0;
  const std::int64_t mx = e.x > 2 * margin ? margin : 0;
  double worst = 0;
  for (std::int64_t z = mz; z < e.z - mz; ++z) {
    for (std::int64_t y = my; y < e.y - my; ++y) {
      for (std::int64_t x = mx; x < e.x - mx; ++x) {
        worst = std::max(worst, std::abs(a.at(z, y, x) - b.at(z, y, x)));
      }
    }
  }
  return worst;
}

// ---- decomposition ----------------------------------------------------------

TEST(Decompose, SplitsAdditiveChain) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i-1] + A[i] - A[i+1]; }
    s (b, a);
  )");
  const auto subs = decompose_statement(p.stencils[0].stmts[0]);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_FALSE(subs[0].accumulate);
  EXPECT_TRUE(subs[1].accumulate);
  EXPECT_TRUE(subs[2].accumulate);
  // The subtracted term is negated.
  EXPECT_EQ(subs[2].rhs->kind, ir::ExprKind::Unary);
}

TEST(Decompose, LeavesLocalsAndProductsAlone) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N], c;
    stencil s (B, A, c) {
      double t = c * c;
      B[i] = t * A[i];
    }
    s (b, a, c);
  )");
  EXPECT_EQ(decompose_statement(p.stencils[0].stmts[0]).size(), 1u);
  EXPECT_EQ(decompose_statement(p.stencils[0].stmts[1]).size(), 1u);
}

TEST(Decompose, PreservesSemantics) {
  const ir::Program p = parse(kJacobiDsl);
  sim::GridSet ref = sim::GridSet::from_program(p, 99);
  sim::GridSet dec = ref.clone();

  ir::BoundStencil bound = ir::bind_call(p, p.steps[0].call);
  sim::run_stencil_reference(p, bound, ref);

  ir::BoundStencil decomposed = bound;
  decomposed.stmts.clear();
  for (const auto& st : bound.stmts) {
    for (auto& sub : decompose_statement(st)) {
      decomposed.stmts.push_back(std::move(sub));
    }
  }
  sim::run_stencil_reference(p, decomposed, dec);
  EXPECT_LT(Grid3D::max_abs_diff(ref.grid("out"), dec.grid("out")), 1e-12);
}

// ---- homogenization / retiming ---------------------------------------------

TEST(Retime, JacobiIsRetimable) {
  const ir::Program p = parse(kJacobiDsl);
  const auto bound = ir::bind_call(p, p.steps[0].call);
  // Streaming along k (iterator 0): every additive term touches a single
  // k-offset, so the decomposed statement list homogenizes.
  const RetimeResult rt = try_retime(bound.stmts, 0);
  EXPECT_TRUE(rt.applied);
  EXPECT_GT(rt.num_substatements, 1);
  // Offsets must include -1, 0, +1 planes.
  std::set<std::int64_t> offsets(rt.stream_offsets.begin(),
                                 rt.stream_offsets.end());
  EXPECT_TRUE(offsets.count(-1));
  EXPECT_TRUE(offsets.count(0));
  EXPECT_TRUE(offsets.count(1));
}

TEST(Retime, MixedOffsetsNotHomogenizable) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], c[L,M,N];
    stencil s (B, A, C) { B[k][j][i] = C[k+1][j][i] * A[k-1][j][i]; }
    s (b, a, c);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  EXPECT_FALSE(try_retime(bound.stmts, 0).applied);
  EXPECT_FALSE(is_homogenizable(*bound.stmts[0].rhs, 0));
}

TEST(Retime, HomogenizableSingleOffsetProduct) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], c[L,M,N];
    stencil s (B, A, C) { B[k][j][i] = C[k-1][j][i] * A[k-1][j+1][i]; }
    s (b, a, c);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  const RetimeResult rt = try_retime(bound.stmts, 0);
  EXPECT_TRUE(rt.applied);
  EXPECT_EQ(rt.stream_offsets, (std::vector<std::int64_t>{-1}));
}

// ---- folding ------------------------------------------------------------------

TEST(Fold, DetectsPointwiseProductGroup) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i]*B[k][j][i] + A[k][j][i+1]*B[k][j][i+1]
                 - A[k][j-1][i]*B[k][j-1][i];
    }
    s (o, a, b);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  const auto groups = find_fold_groups(bound.stmts);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"a", "b"}));
  // (n-1)*(m-1) = 1 * 2 multiplies saved per point.
  EXPECT_EQ(folding_flop_savings(bound.stmts, groups), 2);
}

TEST(Fold, LoneReadBreaksGroup) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i]*B[k][j][i] + A[k][j][i+1];
    }
    s (o, a, b);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  EXPECT_TRUE(find_fold_groups(bound.stmts).empty());
}

TEST(Fold, MismatchedIndicesBreakGroup) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i]*B[k][j][i+1];
    }
    s (o, a, b);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  EXPECT_TRUE(find_fold_groups(bound.stmts).empty());
}

TEST(Fold, ThreeWayGroup) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], c[L,M,N], o[L,M,N];
    stencil s (O, A, B, C) {
      O[k][j][i] = A[k][j][i]*B[k][j][i]*C[k][j][i]
                 + A[k+1][j][i]*B[k+1][j][i]*C[k+1][j][i];
    }
    s (o, a, b, c);
  )");
  const auto bound = ir::bind_call(p, p.steps[0].call);
  const auto groups = find_fold_groups(bound.stmts);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

// ---- time tiling -------------------------------------------------------------

TEST(TimeTile, StagesChainThroughIntermediates) {
  const ir::Program p = parse(kJacobiIterativeDsl);
  const TimeTiledKernel tt = time_tile_iterate(p, p.steps[0], 3);
  ASSERT_EQ(tt.stages.size(), 3u);
  EXPECT_EQ(tt.augmented.arrays.size(), p.arrays.size() + 2);
  // Final stage writes the real output.
  EXPECT_EQ(tt.stages[2].stmts.back().lhs_name, "out");
}

TEST(TimeTile, MatchesReferenceForDivisibleT) {
  const ir::Program p = parse(kJacobiIterativeDsl);  // iterate 4
  sim::GridSet ref = sim::GridSet::from_program(p, 21);
  // Time-tiled equivalence requires homogeneous Dirichlet boundaries (see
  // zero_boundary): the ping-pong buffers then carry identical (zero)
  // shells, matching the fused kernel's zero-initialized intermediates.
  sim::zero_boundary(ref.grid("in"), 1);
  sim::GridSet pre = ref.clone();
  sim::run_program_reference(p, ref);

  const TimeTiledKernel tt = time_tile_iterate(p, p.steps[0], 2);
  sim::GridSet fused = sim::GridSet::from_program(tt.augmented, 21);
  fused.grid("in") = pre.grid("in");
  const auto dev = gpumodel::p100();
  codegen::KernelConfig cfg;
  cfg.block = {4, 4, 2};
  cfg.time_tile = 2;
  const auto plan = codegen::build_plan(tt.augmented, tt.stages, cfg, dev);
  // Two invocations of the 2x-fused kernel == 4 reference iterations.
  for (int inv = 0; inv < 2; ++inv) {
    sim::execute_plan(plan, fused);
    fused.swap("out", "in");
  }
  EXPECT_LT(Grid3D::max_abs_diff(ref.grid("in"), fused.grid("in")), 1e-12);
}

TEST(TimeTile, RejectsMalformedIterate) {
  const ir::Program p = parse(kJacobiDsl);
  ir::Step bogus;
  bogus.kind = ir::Step::Kind::Iterate;
  EXPECT_THROW(time_tile_iterate(p, bogus, 2), SemanticError);
}

// ---- maxfuse -------------------------------------------------------------------

const char* kIndependentCallsDsl = R"(
  parameter L=10, M=10, N=10;
  iterator k, j, i;
  double a[L,M,N], r0[L,M,N], r1[L,M,N], c;
  copyin a, c;
  stencil s0 (R, A, c) { R[k][j][i] = c * (A[k][j][i-1] + A[k][j][i+1]); }
  stencil s1 (R, A, c) { R[k][j][i] = c * (A[k][j-1][i] - A[k][j+1][i]); }
  s0 (r0, a, c);
  s1 (r1, a, c);
  copyout r0, r1;
)";

TEST(MaxFuse, SingleStencilSingleCall) {
  const ir::Program p = parse(kIndependentCallsDsl);
  const ir::Program fused = maxfuse_program(p);
  ASSERT_EQ(fused.stencils.size(), 1u);
  EXPECT_EQ(fused.stencils[0].name, "maxfuse");
  ASSERT_EQ(fused.steps.size(), 1u);
  EXPECT_EQ(fused.stencils[0].stmts.size(), 2u);
}

TEST(MaxFuse, SemanticsPreservedForIndependentOutputs) {
  const ir::Program p = parse(kIndependentCallsDsl);
  sim::GridSet a = sim::GridSet::from_program(p, 5);
  sim::GridSet b = a.clone();
  sim::run_program_reference(p, a);
  sim::run_program_reference(maxfuse_program(p), b);
  // Guards merge under fusion (a point is skipped if ANY statement's reads
  // go out of bounds), so only the common interior must agree.
  for (const auto& out : {"r0", "r1"}) {
    EXPECT_LT(max_abs_diff_interior(a.grid(out), b.grid(out), 1), 1e-12)
        << out;
  }
}

TEST(MaxFuse, RejectsCrossPointDag) {
  // blury reads blurx's output at j+-1: single-body fusion is illegal.
  const ir::Program p = parse(artemis::testing::kDagDsl);
  EXPECT_THROW(maxfuse_program(p), SemanticError);
}

// ---- fission --------------------------------------------------------------------

const char* kMultiOutputDsl = R"(
  parameter L=10, M=10, N=10;
  iterator k, j, i;
  double u0[L,M,N], u1[L,M,N], mu[L,M,N], r0[L,M,N], r1[L,M,N], r2[L,M,N], h;
  copyin u0, u1, mu, h;
  stencil rhs (R0, R1, R2, U0, U1, MU, h) {
    double mux1 = MU[k][j][i-1] + MU[k][j][i+1];
    double mux2 = MU[k][j-1][i] + MU[k][j+1][i];
    R0[k][j][i] = h * mux1 * (U0[k][j][i+1] - U0[k][j][i-1]);
    R1[k][j][i] = h * mux2 * (U1[k][j+1][i] - U1[k][j-1][i]);
    R2[k][j][i] = h * mux1 * mux2 + U0[k+1][j][i] * U1[k-1][j][i];
  }
  rhs (r0, r1, r2, u0, u1, mu, h);
  copyout r0, r1, r2;
)";

TEST(Fission, TrivialSplitsPerOutput) {
  const ir::Program p = parse(kMultiOutputDsl);
  const ir::Program split = trivial_fission(p, "rhs");
  ASSERT_EQ(split.stencils.size(), 3u);
  ASSERT_EQ(split.steps.size(), 3u);
  // Kernel 0 needs mux1 but not mux2; kernel 2 needs both (replication).
  const auto& k0 = split.stencils[0];
  const auto& k2 = split.stencils[2];
  EXPECT_EQ(k0.stmts.size(), 2u);  // mux1 + R0
  EXPECT_EQ(k2.stmts.size(), 3u);  // mux1 + mux2 + R2
  // Kernel params shrink to what is used.
  EXPECT_EQ(k0.params, (std::vector<std::string>{"R0", "U0", "MU", "h"}));
}

TEST(Fission, TrivialPreservesSemantics) {
  const ir::Program p = parse(kMultiOutputDsl);
  sim::GridSet a = sim::GridSet::from_program(p, 31);
  sim::GridSet b = a.clone();
  sim::run_program_reference(p, a);
  sim::run_program_reference(trivial_fission(p, "rhs"), b);
  // Boundary guards differ by construction: the monolithic kernel skips a
  // point when ANY output's reads go out of bounds, each fissioned kernel
  // only when its own reads do. The interior must agree exactly.
  for (const auto& out : {"r0", "r1", "r2"}) {
    EXPECT_LT(max_abs_diff_interior(a.grid(out), b.grid(out), 1), 1e-12)
        << out;
  }
}

TEST(Fission, TrivialRoundTripsThroughDsl) {
  const ir::Program p = parse(kMultiOutputDsl);
  const ir::Program split = trivial_fission(p, "rhs");
  const std::string text = dsl::print_program(split);
  const ir::Program reparsed = dsl::parse(text);
  EXPECT_EQ(reparsed.stencils.size(), 3u);
  EXPECT_EQ(dsl::print_program(reparsed), text);
}

TEST(Fission, RecomputeWithGenerousBudgetKeepsOneKernel) {
  const ir::Program p = parse(kMultiOutputDsl);
  const ir::Program split =
      recompute_fission(p, "rhs", gpumodel::p100(), 255);
  EXPECT_EQ(split.stencils.size(), 1u);
}

TEST(Fission, RecomputeWithTightBudgetSplits) {
  const ir::Program p = parse(kMultiOutputDsl);
  const ir::Program split = recompute_fission(p, "rhs", gpumodel::p100(), 23);
  EXPECT_GT(split.stencils.size(), 1u);
  sim::GridSet a = sim::GridSet::from_program(p, 8);
  sim::GridSet b = a.clone();
  sim::run_program_reference(p, a);
  sim::run_program_reference(split, b);
  for (const auto& out : {"r0", "r1", "r2"}) {
    EXPECT_LT(max_abs_diff_interior(a.grid(out), b.grid(out), 1), 1e-12)
        << out;
  }
}

}  // namespace
}  // namespace artemis::transform
