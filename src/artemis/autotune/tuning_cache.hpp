#pragma once

#include <map>
#include <optional>
#include <string>

#include "artemis/codegen/plan.hpp"

namespace artemis::autotune {

/// Serialize a kernel configuration to a single-line, human-readable
/// key=value record, and parse it back. Round-trips exactly.
std::string serialize_config(const codegen::KernelConfig& cfg);
codegen::KernelConfig parse_config(const std::string& line);

/// One cached tuning outcome.
struct CacheEntry {
  codegen::KernelConfig config;
  double time_s = 0;
  double tflops = 0;
};

/// A persistent store of tuning results, keyed by a caller-chosen string
/// (e.g. "<benchmark>/<device>/<version>/x<tile>"). Section VI-A: "the
/// deep tuning is done only once. For most applications, its cost will be
/// amortized over the stencil invocations" — this is where the amortized
/// results live between runs.
///
/// File format: one entry per line,
///   <key> \t <time_s> \t <tflops> \t <serialized config>
/// Unknown or malformed lines are skipped on load (forward compatibility).
class TuningCache {
 public:
  TuningCache() = default;

  void put(const std::string& key, const CacheEntry& entry);
  std::optional<CacheEntry> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }

  /// Serialize all entries / load entries from text. load() merges into
  /// the current contents (later keys win).
  std::string save_text() const;
  void load_text(const std::string& text);

  /// File convenience wrappers. save_file overwrites; load_file merges.
  /// Returns false (without throwing) when the file cannot be opened.
  bool save_file(const std::string& path) const;
  bool load_file(const std::string& path);

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace artemis::autotune
