#include "artemis/verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/sim/reference.hpp"

namespace artemis::verify {

using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

void add_counters(sim::ExecCounters& a, const sim::ExecCounters& b) {
  a.computed_points += b.computed_points;
  a.skipped_points += b.skipped_points;
  a.global_read_elems += b.global_read_elems;
  a.global_write_elems += b.global_write_elems;
  a.scratch_read_elems += b.scratch_read_elems;
  a.scratch_write_elems += b.scratch_write_elems;
  a.blocks += b.blocks;
}

RunResult run_program_plans(const ir::Program& prog, const KernelConfig& cfg,
                            bool fuse, std::uint64_t seed,
                            sim::SimEngine engine, int jobs,
                            bool record_trace, bool native_fast_math) {
  const auto dev = gpumodel::p100();
  RunResult r{sim::GridSet::from_program(prog, seed), {}, {}};
  sim::ExecOptions opts;
  opts.engine = engine;
  opts.jobs = jobs;
  opts.native_fast_math = native_fast_math;
  if (record_trace) {
    opts.global_hook = [&r](const std::string& a, std::int64_t z,
                            std::int64_t y, std::int64_t x, bool w) {
      r.trace.push_back({a, z, y, x, w});
    };
  }

  const auto run_plan = [&](const KernelPlan& plan) {
    add_counters(r.totals, sim::execute_plan(plan, r.gs, opts));
  };
  if (fuse) {
    std::vector<ir::BoundStencil> stages;
    int idx = 0;
    for (const auto& step : prog.steps) {
      ARTEMIS_CHECK(step.kind == ir::Step::Kind::Call);
      stages.push_back(
          ir::bind_call(prog, step.call, str_cat("s", idx++, "_")));
    }
    run_plan(codegen::build_plan(prog, std::move(stages), cfg, dev, {}));
  } else {
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind == ir::ExecStep::Kind::Swap) {
        r.gs.swap(step.swap.a, step.swap.b);
        continue;
      }
      std::vector<ir::BoundStencil> stages = {step.stencil};
      run_plan(codegen::build_plan(prog, std::move(stages), cfg, dev, {}));
    }
  }
  return r;
}

std::string grids_diff(const sim::GridSet& a, const sim::GridSet& b) {
  for (const auto& [name, ga] : a.grids()) {
    if (!b.has_grid(name)) {
      return str_cat("grid '", name, "' missing from second set");
    }
    const Grid3D& gb = b.grid(name);
    if (!(ga->extents() == gb.extents())) {
      return str_cat("grid '", name, "' extents differ");
    }
    if (std::memcmp(ga->raw().data(), gb.raw().data(),
                    ga->raw().size() * sizeof(double)) != 0) {
      // Find the first differing element for the failure report.
      const auto& e = ga->extents();
      for (std::int64_t z = 0; z < e.z; ++z) {
        for (std::int64_t y = 0; y < e.y; ++y) {
          for (std::int64_t x = 0; x < e.x; ++x) {
            const double va = ga->at(z, y, x);
            const double vb = gb.at(z, y, x);
            if (std::memcmp(&va, &vb, sizeof(double)) != 0) {
              return str_cat("grid '", name, "' differs at (", z, ",", y, ",",
                             x, "): ", format_double(va, 17), " vs ",
                             format_double(vb, 17));
            }
          }
        }
      }
      return str_cat("grid '", name, "' bytes differ");
    }
  }
  return {};
}

std::string counters_diff(const sim::ExecCounters& a,
                          const sim::ExecCounters& b) {
  if (a.computed_points == b.computed_points &&
      a.skipped_points == b.skipped_points &&
      a.global_read_elems == b.global_read_elems &&
      a.global_write_elems == b.global_write_elems &&
      a.scratch_read_elems == b.scratch_read_elems &&
      a.scratch_write_elems == b.scratch_write_elems &&
      a.blocks == b.blocks) {
    return {};
  }
  return str_cat("counters differ: computed ", a.computed_points, "/",
                 b.computed_points, " skipped ", a.skipped_points, "/",
                 b.skipped_points, " greads ", a.global_read_elems, "/",
                 b.global_read_elems, " gwrites ", a.global_write_elems, "/",
                 b.global_write_elems, " sreads ", a.scratch_read_elems, "/",
                 b.scratch_read_elems, " swrites ", a.scratch_write_elems,
                 "/", b.scratch_write_elems, " blocks ", a.blocks, "/",
                 b.blocks);
}

namespace {

/// Map a double onto a monotonically ordered integer line so that the
/// distance between two mapped values is their ULP separation. Negative
/// values fold below zero; -0.0 and +0.0 both land on 0.
std::int64_t ulp_order(double v) {
  std::int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits >= 0 ? bits
                   : std::numeric_limits<std::int64_t>::min() - bits;
}

std::uint64_t ulp_distance(double a, double b) {
  const std::int64_t ua = ulp_order(a), ub = ulp_order(b);
  return static_cast<std::uint64_t>(std::max(ua, ub)) -
         static_cast<std::uint64_t>(std::min(ua, ub));
}

}  // namespace

std::string grids_ulp_diff(const sim::GridSet& a, const sim::GridSet& b,
                           std::uint64_t max_ulps) {
  for (const auto& [name, ga] : a.grids()) {
    if (!b.has_grid(name)) {
      return str_cat("grid '", name, "' missing from second set");
    }
    const Grid3D& gb = b.grid(name);
    if (!(ga->extents() == gb.extents())) {
      return str_cat("grid '", name, "' extents differ");
    }
    // Near an exact cancellation the fused and unfused products round to
    // values whose ULP distance is unbounded even though the absolute
    // difference is one rounding error of the *operands* — so an
    // eps-sized absolute escape accompanies the ULP bound. A relative
    // escape covers the dual amplification: exp/pow map a one-ULP input
    // difference to arbitrarily many output ULPs, and iterative programs
    // compound per-step rounding, so a per-FMA error can legitimately
    // surface as ~1e-12 relative on a 1e+40-magnitude result. Both
    // escapes are orders of magnitude below any structural miscompile
    // (wrong offset, wrong operand), which shows up at O(1) relative.
    constexpr double kAbsEscape = 1e-9;
    constexpr double kRelEscape = 1e-9;
    const auto& e = ga->extents();
    for (std::int64_t z = 0; z < e.z; ++z) {
      for (std::int64_t y = 0; y < e.y; ++y) {
        for (std::int64_t x = 0; x < e.x; ++x) {
          const double va = ga->at(z, y, x);
          const double vb = gb.at(z, y, x);
          if (std::isnan(va) && std::isnan(vb)) continue;
          if (std::abs(va - vb) <= kAbsEscape) continue;
          if (std::abs(va - vb) <=
              kRelEscape * std::max(std::abs(va), std::abs(vb))) {
            continue;
          }
          if (std::isnan(va) != std::isnan(vb) ||
              ulp_distance(va, vb) > max_ulps) {
            return str_cat("grid '", name, "' differs at (", z, ",", y, ",",
                           x, ") beyond ", max_ulps, " ulps: ",
                           format_double(va, 17), " vs ",
                           format_double(vb, 17));
          }
        }
      }
    }
  }
  return {};
}

std::string engines_diff(const ir::Program& prog, const KernelConfig& cfg,
                         bool fuse, std::uint64_t seed) {
  const RunResult oracle = run_program_plans(prog, cfg, fuse, seed,
                                             sim::SimEngine::TreeWalk, 1,
                                             false);
  if (!fuse) {
    // Per-call plans reproduce run_stencil_reference exactly, so the
    // whole-program reference must match the tree walk bit-for-bit.
    sim::GridSet ref = sim::GridSet::from_program(prog, seed);
    sim::run_program_reference(prog, ref);
    if (std::string d = grids_diff(ref, oracle.gs); !d.empty()) {
      return str_cat("reference vs tree-walk: ", d);
    }
  }
  for (const int jobs : {1, 2, 4}) {
    const RunResult got = run_program_plans(prog, cfg, fuse, seed,
                                            sim::SimEngine::Bytecode, jobs,
                                            false);
    if (std::string d = grids_diff(oracle.gs, got.gs); !d.empty()) {
      return str_cat("tree-walk vs bytecode jobs=", jobs, ": ", d);
    }
    if (std::string d = counters_diff(oracle.totals, got.totals);
        !d.empty()) {
      return str_cat("tree-walk vs bytecode jobs=", jobs, ": ", d);
    }
  }
  // Native engine, strict mode: same source evaluation order, no FMA —
  // the SIMD interior and the bytecode rim must land bit-for-bit on the
  // oracle's grids and counters at every job count.
  for (const int jobs : {1, 2, 4}) {
    const RunResult got = run_program_plans(prog, cfg, fuse, seed,
                                            sim::SimEngine::Native, jobs,
                                            false);
    if (std::string d = grids_diff(oracle.gs, got.gs); !d.empty()) {
      return str_cat("tree-walk vs native jobs=", jobs, ": ", d);
    }
    if (std::string d = counters_diff(oracle.totals, got.totals);
        !d.empty()) {
      return str_cat("tree-walk vs native jobs=", jobs, ": ", d);
    }
  }
  // Native fast-math: FMA contraction is a declared rounding change, so
  // grids are held to a ULP bound instead of bit identity — but counters
  // never depend on values, and the mode must stay deterministic across
  // job counts (bit-identical to itself).
  constexpr std::uint64_t kFastMathUlps = 64;
  const RunResult fm1 = run_program_plans(prog, cfg, fuse, seed,
                                          sim::SimEngine::Native, 1, false,
                                          /*native_fast_math=*/true);
  if (std::string d = grids_ulp_diff(oracle.gs, fm1.gs, kFastMathUlps);
      !d.empty()) {
    return str_cat("tree-walk vs native fast-math: ", d);
  }
  if (std::string d = counters_diff(oracle.totals, fm1.totals); !d.empty()) {
    return str_cat("tree-walk vs native fast-math: ", d);
  }
  const RunResult fm2 = run_program_plans(prog, cfg, fuse, seed,
                                          sim::SimEngine::Native, 2, false,
                                          /*native_fast_math=*/true);
  if (std::string d = grids_diff(fm1.gs, fm2.gs); !d.empty()) {
    return str_cat("native fast-math jobs=1 vs jobs=2: ", d);
  }
  // The hook-trace comparison materializes every global access as a
  // TraceEntry; on a production-sized domain that is gigabytes of trace
  // for no extra coverage (grids and counters above already ran at every
  // job count), so it is reserved for small domains — which the fuzz
  // sweep and the test suite always use.
  constexpr std::int64_t kTracePointLimit = 1 << 16;
  if (oracle.totals.computed_points > kTracePointLimit) return {};
  const RunResult ta = run_program_plans(prog, cfg, fuse, seed,
                                         sim::SimEngine::TreeWalk, 1, true);
  const RunResult tb = run_program_plans(prog, cfg, fuse, seed,
                                         sim::SimEngine::Bytecode, 1, true);
  if (ta.trace.size() != tb.trace.size()) {
    return str_cat("hook trace lengths differ: ", ta.trace.size(), " vs ",
                   tb.trace.size());
  }
  if (!(ta.trace == tb.trace)) return "hook traces differ";
  if (std::string d = grids_diff(ta.gs, tb.gs); !d.empty()) {
    return str_cat("hooked run: ", d);
  }
  return {};
}

KernelConfig random_config(Rng& rng, int dims) {
  KernelConfig cfg;
  const std::int64_t roll = rng.uniform_int(0, 2);
  if (dims >= 2 && roll == 1) {
    cfg.tiling = TilingScheme::StreamSerial;
  } else if (dims >= 2 && roll == 2) {
    cfg.tiling = TilingScheme::StreamConcurrent;
    cfg.stream_chunk = static_cast<int>(rng.uniform_int(3, 9));
  } else {
    cfg.tiling = TilingScheme::Spatial3D;
  }
  cfg.stream_axis = dims - 1;
  cfg.block = {static_cast<int>(rng.uniform_int(2, 7)),
               dims >= 2 ? static_cast<int>(rng.uniform_int(2, 7)) : 1,
               dims >= 3 ? static_cast<int>(rng.uniform_int(1, 5)) : 1};
  if (cfg.tiling != TilingScheme::Spatial3D) {
    cfg.block[static_cast<std::size_t>(dims - 1)] = 1;
  }
  if (rng.coin(0.3)) cfg.unroll[0] = 2;
  return cfg;
}

}  // namespace artemis::verify
