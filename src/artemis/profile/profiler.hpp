#pragma once

#include <string>
#include <vector>

#include "artemis/gpumodel/perf_model.hpp"

namespace artemis::profile {

/// Memory levels the profiler reasons about (Section IV).
enum class Level { Dram, Tex, Shm };
const char* level_name(Level l);

/// Roofline verdict for one level.
enum class LevelVerdict {
  BandwidthBound,  ///< OI_M well below alpha/beta_M
  ComputeBound,    ///< OI_M at or above alpha/beta_M
  Inconclusive,    ///< near the ridge; resolved by code differencing
  NoTraffic,       ///< the kernel does not touch this level
};
const char* level_verdict_name(LevelVerdict v);

/// Full profiling report for one kernel version, mirroring what ARTEMIS
/// extracts from an nvprof run plus the roofline model.
struct ProfileReport {
  gpumodel::KernelEval eval;

  double oi_dram = 0, oi_tex = 0, oi_shm = 0;
  double balance_dram = 0, balance_tex = 0, balance_shm = 0;

  LevelVerdict dram = LevelVerdict::NoTraffic;
  LevelVerdict tex = LevelVerdict::NoTraffic;
  LevelVerdict shm = LevelVerdict::NoTraffic;

  bool latency_bound = false;
  bool compute_bound = false;      ///< compute-bound at every active level
  bool register_pressure = false;  ///< spills, or register-capped occupancy
  /// Levels whose verdict was settled by code differencing rather than the
  /// plain roofline thresholds.
  std::vector<Level> differenced;

  bool bandwidth_bound_at(Level l) const {
    switch (l) {
      case Level::Dram: return dram == LevelVerdict::BandwidthBound;
      case Level::Tex: return tex == LevelVerdict::BandwidthBound;
      case Level::Shm: return shm == LevelVerdict::BandwidthBound;
    }
    return false;
  }
  bool bandwidth_bound_anywhere() const {
    return bandwidth_bound_at(Level::Dram) || bandwidth_bound_at(Level::Tex) ||
           bandwidth_bound_at(Level::Shm);
  }

  std::string summary() const;
};

/// Profiler tunables.
struct ProfileOptions {
  /// OI below `bandwidth_margin * balance` is clearly bandwidth-bound;
  /// OI at or above `compute_margin * balance` clearly compute-bound;
  /// between the two the profiler falls back to code differencing.
  double bandwidth_margin = 0.7;
  double compute_margin = 1.0;
  /// Code differencing declares bandwidth-bound when eliminating the
  /// level's traffic improves modelled time by more than this fraction.
  double differencing_threshold = 0.08;
};

/// Profile one kernel plan: evaluate it on the device model (the nvprof
/// stand-in), compute per-level operational intensity, classify each level
/// via the roofline, and resolve near-ridge cases with code differencing
/// (re-time the kernel with the level's traffic confined to one block,
/// like Listing 3, and compare).
ProfileReport profile_plan(const codegen::KernelPlan& plan,
                           const gpumodel::DeviceSpec& dev,
                           const gpumodel::ModelParams& params = {},
                           const ProfileOptions& opts = {});

/// Actionable guidance derived from a report (the guidelines of Section
/// IV-A). `iterative` marks time-iterated stencils; `uses_shmem` marks
/// versions that stage arrays in shared memory.
struct OptimizationHints {
  bool disable_unroll = false;
  bool disable_shmem_opts = false;
  bool apply_flop_reduction = false;
  bool try_higher_fusion = false;      ///< iterative, bw-bound at tex/dram
  bool enable_shmem = false;           ///< spatial, tex bandwidth-bound
  bool prefer_global_version = false;  ///< spatial, dram-bound with shmem
  bool enable_register_opts = false;   ///< shm bandwidth-bound
  bool generate_fission_candidates = false;  ///< register pressure
  std::vector<std::string> text;       ///< hints surfaced to the user
};

OptimizationHints derive_hints(const ProfileReport& report, bool iterative,
                               bool uses_shmem);

}  // namespace artemis::profile
