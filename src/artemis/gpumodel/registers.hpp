#pragma once

#include "artemis/codegen/plan.hpp"
#include "artemis/gpumodel/device.hpp"

namespace artemis::gpumodel {

/// Decomposed register-pressure estimate for one kernel plan; mirrors how
/// a real compiler's allocation responds to the plan's structure. Every
/// term is in registers per thread.
struct RegisterEstimate {
  int base = 0;         ///< indices, pointers, loop state
  int locals = 0;       ///< live scalar temporaries
  int operands = 0;     ///< operand registers for the widest statement
  int scheduling = 0;   ///< ILP-window pressure (grows with FLOPs)
  int stream_planes = 0;  ///< register planes of streamed shared arrays
  int accumulators = 0;   ///< retimed partial-sum registers
  int prefetch = 0;       ///< streaming prefetch registers
  int fold_savings = 0;   ///< registers saved by folded buffers
  double unroll_scale = 1.0;

  int total = 0;        ///< final clamped estimate
  int spilled(int max_registers) const {
    return total > max_registers ? total - max_registers : 0;
  }
};

/// Estimate per-thread register demand of the generated kernel.
///
/// The model: a base cost for addressing state; one register per live
/// scalar temporary; operand registers proportional to the widest
/// statement's distinct array reads; a scheduling term proportional to the
/// per-point FLOP count (the compiler keeps a deep ILP window live for
/// large expressions -- the effect that makes SW4's rhs4sgcurv spill even
/// at 255 registers, Section VIII-D); plus streaming register planes,
/// retimed accumulators and prefetch registers. Unrolling scales the
/// per-point terms (blocked distribution reuses overlapping operands,
/// cyclic does not -- Section III-A3).
RegisterEstimate estimate_registers(const codegen::KernelPlan& plan);

/// Lightweight per-point register demand for a raw statement list (no
/// unroll / streaming / placement context). Used by the fission heuristic
/// to size kernel groups before a full plan exists: base + locals +
/// operand + scheduling terms of the full model.
int estimate_registers_for_stmts(const std::vector<ir::Stmt>& stmts);

}  // namespace artemis::gpumodel
