file(REMOVE_RECURSE
  "CMakeFiles/cuda_emitter_test.dir/cuda_emitter_test.cpp.o"
  "CMakeFiles/cuda_emitter_test.dir/cuda_emitter_test.cpp.o.d"
  "cuda_emitter_test"
  "cuda_emitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda_emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
