# Empty compiler generated dependencies file for cache_validation.
# This may be replaced when dependencies are built.
