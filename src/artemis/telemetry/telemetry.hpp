#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "artemis/common/json.hpp"

namespace artemis::telemetry {

/// One key/value attribute attached to a span or event. Values are Json so
/// numbers stay numbers all the way into the sinks.
struct Attr {
  std::string key;
  Json value;
};

/// One recorded telemetry record, timestamped on the collector's steady
/// clock (nanoseconds since enable()).
struct Event {
  enum class Phase {
    Complete,  ///< a span: [ts_ns, ts_ns + dur_ns)
    Instant,   ///< a point event
  };
  Phase phase = Phase::Instant;
  const char* name = "";  ///< static string (call sites use literals)
  const char* cat = "";   ///< category: pipeline, tune, profile, sim, cache
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  ///< Complete only
  int tid = 0;              ///< collector-assigned thread index
  std::vector<Attr> args;
};

/// The process-wide telemetry collector. Disabled by default; every
/// instrumentation call site first checks `enabled()` (one relaxed atomic
/// load) and does nothing else when off, so an uninstrumented run pays no
/// clock reads, no locks and no allocation.
///
/// When enabled, each thread appends to its own buffer (registered lazily
/// through a thread_local handle), so instrumented code inside
/// common/parallel.hpp workers never contends on a global lock per event.
/// Buffers of exited threads are retired into the collector; snapshot()
/// merges live and retired buffers into one time-ordered stream.
class Collector {
 public:
  static Collector& global();

  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drop all recorded events and counters (buffers stay registered).
  void clear();

  /// Nanoseconds since enable() on the steady clock.
  std::int64_t now_ns() const;

  /// Append one event from the calling thread. No-op when disabled.
  void record(Event ev);

  /// Accumulate a named counter. No-op when disabled.
  void counter_add(const std::string& name, std::int64_t delta);

  /// Merge every thread buffer into one stream sorted by start timestamp.
  std::vector<Event> snapshot() const;
  std::map<std::string, std::int64_t> counters() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    int tid = 0;
    std::vector<Event> events;
  };
  struct ThreadHandle;  ///< thread_local registration + exit retirement

  Collector() = default;
  ThreadBuffer* this_thread_buffer();

  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<Event> retired_;
  std::map<std::string, std::int64_t> counters_;
  int next_tid_ = 0;
};

/// True when the global collector is recording.
inline bool enabled() { return Collector::global().enabled(); }

/// RAII span: records a Complete event covering its lifetime. Constructed
/// disabled-cheap: when telemetry is off, the constructor is a single
/// atomic load. Attributes can be attached at construction or later via
/// arg() (e.g. an outcome only known at the end of the region).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "pipeline",
                std::vector<Attr> args = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const std::string& key, Json value);

 private:
  bool active_ = false;
  Event ev_;
};

/// Record an instant event. No-op when disabled (args are only evaluated
/// by the caller; wrap expensive-arg call sites in `if (enabled())`).
void instant(const char* name, const char* cat = "pipeline",
             std::vector<Attr> args = {});

/// Accumulate a named counter on the global collector. No-op when off.
void counter_add(const std::string& name, std::int64_t delta = 1);

}  // namespace artemis::telemetry
