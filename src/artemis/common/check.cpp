#include "artemis/common/check.hpp"

namespace artemis::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "ARTEMIS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw Error(os.str());
}

}  // namespace artemis::detail
