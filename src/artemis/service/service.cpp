#include "artemis/service/service.hpp"

#include <utility>

#include "artemis/common/str.hpp"

namespace artemis::service {

namespace {

/// Internal control-flow error carrying a protocol error code; converted
/// to a structured error response by dispatch(). Never escapes handle().
class ServiceError : public Error {
 public:
  ServiceError(const char* code, const std::string& message)
      : Error(message), code_(code) {}
  const char* code() const { return code_; }

 private:
  const char* code_;
};

Json stats_to_json(const ServiceStats& s, std::size_t inflight) {
  Json j = Json::object();
  j.set("requests", Json(static_cast<std::int64_t>(s.requests)));
  j.set("errors", Json(static_cast<std::int64_t>(s.errors)));
  j.set("compile_calls", Json(static_cast<std::int64_t>(s.compile_calls)));
  j.set("tune_calls", Json(static_cast<std::int64_t>(s.tune_calls)));
  j.set("run_calls", Json(static_cast<std::int64_t>(s.run_calls)));
  j.set("stats_calls", Json(static_cast<std::int64_t>(s.stats_calls)));
  j.set("shutdown_calls",
        Json(static_cast<std::int64_t>(s.shutdown_calls)));
  j.set("plan_hits", Json(static_cast<std::int64_t>(s.plan_hits)));
  j.set("tuner_runs", Json(static_cast<std::int64_t>(s.tuner_runs)));
  j.set("dedup_coalesced",
        Json(static_cast<std::int64_t>(s.dedup_coalesced)));
  j.set("inflight", Json(static_cast<std::int64_t>(inflight)));
  return j;
}

Json plan_store_stats_json(const storage::PlanStoreStats& s) {
  Json j = Json::object();
  const auto u = [](std::uint64_t v) {
    return Json(static_cast<std::int64_t>(v));
  };
  j.set("hits", u(s.hits));
  j.set("misses", u(s.misses));
  j.set("puts", u(s.puts));
  j.set("put_failures", u(s.put_failures));
  j.set("io_errors", u(s.io_errors));
  j.set("recovered_tmp", u(s.recovered_tmp));
  j.set("quarantined", u(s.quarantined));
  j.set("drop_torn", u(s.drop_torn));
  j.set("drop_crc_mismatch", u(s.drop_crc_mismatch));
  j.set("drop_version_skew", u(s.drop_version_skew));
  j.set("drop_malformed", u(s.drop_malformed));
  j.set("stale_locks_reclaimed", u(s.stale_locks_reclaimed));
  j.set("compactions", u(s.compactions));
  return j;
}

}  // namespace

ArtemisService::ArtemisService(ServiceOptions opts)
    : opts_(std::move(opts)), ctx_(opts_.context) {
  if (!opts_.journal_dir.empty()) {
    ctx_.vfs().mkdirs(opts_.journal_dir);
  }
}

std::string ArtemisService::require_source(const Request& req) {
  if (!req.params.contains("source") ||
      !req.params["source"].is_string() ||
      req.params["source"].as_string().empty()) {
    throw ServiceError(errc::kBadRequest,
                       str_cat("method '", req.method,
                               "' requires a non-empty string param "
                               "'source'"));
  }
  return req.params["source"].as_string();
}

std::string ArtemisService::handle(const std::string& request_payload) {
  return handle_payload(request_payload).dump();
}

Json ArtemisService::handle_json(const Json& request) {
  return handle_payload(request.dump());
}

Json ArtemisService::handle_payload(const std::string& request_payload) {
  std::string code, message;
  Json id;
  Json response;
  const auto req = parse_request(request_payload, &code, &message, &id);
  if (!req.has_value()) {
    response = make_error(id, code, message);
  } else {
    response = dispatch(*req);
  }
  const bool ok = response["ok"].as_bool();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    if (!ok) ++stats_.errors;
  }
  return response;
}

Json ArtemisService::dispatch(const Request& req) {
  try {
    if (shutdown_requested() && req.method != "stats" &&
        req.method != "shutdown") {
      throw ServiceError(errc::kShuttingDown,
                         "the daemon is shutting down");
    }
    if (req.method == "compile") return do_compile(req);
    if (req.method == "tune") return do_tune(req);
    if (req.method == "run") return do_run(req);
    if (req.method == "stats") return do_stats(req);
    if (req.method == "shutdown") return do_shutdown(req);
    return make_error(req.id, errc::kUnknownMethod,
                      str_cat("unknown method '", req.method, "'"));
  } catch (const storage::FsCrash&) {
    throw;  // the simulated machine is dead; the daemon dies with it
  } catch (const ServiceError& e) {
    return make_error(req.id, e.code(), e.what());
  } catch (const Error& e) {
    return make_error(req.id, errc::kInternal, e.what());
  } catch (const std::exception& e) {
    return make_error(req.id, errc::kInternal, e.what());
  }
}

Json ArtemisService::do_compile(const Request& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compile_calls;
  }
  const std::string source = require_source(req);
  driver::CompileInfo info;
  try {
    info = ctx_.compile(source);
  } catch (const Error& e) {
    throw ServiceError(errc::kCompileError, e.what());
  }
  Json result = Json::object();
  result.set("plan_key", Json(info.plan_key));
  result.set("run_key", Json(info.run_key));
  result.set("device", Json(ctx_.device().name));
  result.set("arrays",
             Json(static_cast<std::int64_t>(info.program.arrays.size())));
  result.set("steps",
             Json(static_cast<std::int64_t>(info.program.steps.size())));
  Json params = Json::object();
  for (const auto& p : info.program.params) {
    params.set(p.name, Json(static_cast<std::int64_t>(p.value)));
  }
  result.set("params", std::move(params));
  return make_response(req.id, std::move(result));
}

Json ArtemisService::tune_result(const storage::PlanRecord& rec,
                                 const std::string& plan_bytes, bool cached,
                                 bool /*coalesced*/) {
  Json result = Json::object();
  result.set("plan_key", Json(rec.key));
  result.set("config", Json(rec.config));
  result.set("time_s", Json(rec.time_s));
  result.set("tflops", Json(rec.tflops));
  result.set("cached", Json(cached));
  result.set("plan_bytes", Json(plan_bytes));
  return result;
}

Json ArtemisService::do_tune(const Request& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tune_calls;
  }
  const std::string source = require_source(req);
  driver::CompileInfo info;
  try {
    info = ctx_.compile(source);
  } catch (const Error& e) {
    throw ServiceError(errc::kCompileError, e.what());
  }
  const std::string& key = info.plan_key;

  // Optional model-guided pruning override (docs/SERVICE.md), validated
  // up front so a malformed request fails the same way on every path.
  // The dedup key stays the plan key: the analytical pre-filter is
  // designed to reproduce the unpruned plan, so requests differing only
  // in model_prune_k coalesce onto one evaluation.
  int model_prune_k = -1;
  if (req.params.contains("model_prune_k")) {
    const Json& k = req.params["model_prune_k"];
    if (!k.is_number() || k.as_int() < 0 ||
        static_cast<double>(k.as_int()) != k.as_double()) {
      throw ServiceError(errc::kBadRequest,
                         "'model_prune_k' must be a non-negative integer");
    }
    model_prune_k = static_cast<int>(k.as_int());
  }

  // Fast path: the plan is already published. No locks, no dedup — the
  // store read is the whole request.
  if (auto hit = ctx_.stored_plan(key)) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.plan_hits;
    }
    return make_response(
        req.id,
        tune_result(*hit, storage::encode_plan_record(*hit),
                    /*cached=*/true, /*coalesced=*/false));
  }

  // Miss: join an identical in-flight tune, or become the evaluator.
  std::shared_ptr<InFlight> fl;
  bool evaluator = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      fl = it->second;
      ++stats_.dedup_coalesced;
    } else {
      fl = std::make_shared<InFlight>();
      inflight_[key] = fl;
      evaluator = true;
    }
  }

  if (!evaluator) {
    std::unique_lock<std::mutex> wait_lock(fl->mu);
    fl->cv.wait(wait_lock, [&] { return fl->done; });
    if (!fl->ok) throw ServiceError(errc::kTuneError, fl->message);
    return make_response(req.id, fl->result);
  }

  // Evaluator path. Whatever happens — success, a tuning error, or a
  // simulated machine death — the in-flight entry is completed and
  // removed so coalesced waiters never hang and the key can be retried.
  const auto finish = [&](bool ok, Json result, std::string message) {
    {
      const std::lock_guard<std::mutex> lock(fl->mu);
      fl->done = true;
      fl->ok = ok;
      fl->result = std::move(result);
      fl->message = std::move(message);
    }
    fl->cv.notify_all();
    const std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
  };

  driver::TuneRequest treq;
  treq.reuse_stored_plan = true;  // another daemon may have published it
  if (!opts_.journal_dir.empty()) {
    treq.journal_path = str_cat(opts_.journal_dir, "/", key, ".wal");
    treq.resume = true;
  }
  treq.model_prune_k = model_prune_k;
  driver::TuneOutcome outcome;
  try {
    outcome = ctx_.tune(source, treq);
  } catch (const storage::FsCrash&) {
    finish(false, Json(), "the daemon crashed mid-tune");
    throw;
  } catch (const Error& e) {
    finish(false, Json(), e.what());
    throw ServiceError(errc::kTuneError, e.what());
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (outcome.served_from_store) {
      ++stats_.plan_hits;
    } else {
      ++stats_.tuner_runs;
    }
  }
  Json result = tune_result(outcome.record, outcome.plan_bytes,
                            outcome.served_from_store, false);
  finish(true, result, "");
  return make_response(req.id, std::move(result));
}

Json ArtemisService::do_run(const Request& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.run_calls;
  }
  const std::string source = require_source(req);
  driver::RunOutcome outcome;
  try {
    outcome = ctx_.run(source);
  } catch (const storage::FsCrash&) {
    throw;
  } catch (const Error& e) {
    throw ServiceError(errc::kCompileError, e.what());
  }
  Json checks = Json::array();
  for (const auto& c : outcome.checks) {
    Json entry = Json::object();
    entry.set("array", Json(c.array));
    entry.set("checksum", Json(c.checksum));
    entry.set("max_abs_diff", Json(c.max_abs_diff));
    checks.push_back(std::move(entry));
  }
  Json result = Json::object();
  result.set("plan_key", Json(outcome.compile.plan_key));
  result.set("checks", std::move(checks));
  return make_response(req.id, std::move(result));
}

Json ArtemisService::do_stats(const Request& req) {
  ServiceStats snapshot;
  std::size_t inflight = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stats_calls;
    snapshot = stats_;
    inflight = inflight_.size();
  }
  Json result = Json::object();
  result.set("protocol_version", Json(kProtocolVersion));
  result.set("device", Json(ctx_.device().name));
  result.set("strategy", Json(ctx_.strategy().name));
  result.set("jobs", Json(ctx_.resolved_jobs()));
  result.set("service", stats_to_json(snapshot, inflight));
  const auto cs = ctx_.stats();
  Json cj = Json::object();
  cj.set("compiles", Json(static_cast<std::int64_t>(cs.compiles)));
  cj.set("tunes", Json(static_cast<std::int64_t>(cs.tunes)));
  cj.set("tuner_runs", Json(static_cast<std::int64_t>(cs.tuner_runs)));
  cj.set("store_hits", Json(static_cast<std::int64_t>(cs.store_hits)));
  cj.set("store_serves", Json(static_cast<std::int64_t>(cs.store_serves)));
  cj.set("cache_hits", Json(static_cast<std::int64_t>(cs.cache_hits)));
  cj.set("runs", Json(static_cast<std::int64_t>(cs.runs)));
  result.set("context", std::move(cj));
  if (storage::PlanStore* store = ctx_.store()) {
    result.set("plan_store", plan_store_stats_json(store->stats()));
  } else {
    result.set("plan_store", Json());
  }
  return make_response(req.id, std::move(result));
}

Json ArtemisService::do_shutdown(const Request& req) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shutdown_calls;
  }
  shutdown_.store(true, std::memory_order_release);
  Json result = Json::object();
  result.set("stopping", Json(true));
  return make_response(req.id, std::move(result));
}

ServiceStats ArtemisService::stats_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace artemis::service
