#include <gtest/gtest.h>
#include <unistd.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "artemis/common/json.hpp"
#include "artemis/service/service.hpp"
#include "artemis/service/socket_server.hpp"
#include "artemis/storage/vfs.hpp"
#include "test_programs.hpp"

// End-to-end stress over the real transport: a daemon on a unix-domain
// socket, concurrent client connections, and the dedup invariant observed
// through the wire (one tuner run, byte-identical plans for every
// client).

namespace artemis::service {
namespace {

using storage::MemVfs;

std::string socket_path(const std::string& name) {
  return ::testing::TempDir() + "artemis_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

Json make_request(int id, const std::string& method,
                  const char* source = nullptr) {
  Json req = Json::object();
  req.set("id", Json(id));
  req.set("method", Json(method));
  Json params = Json::object();
  if (source != nullptr) params.set("source", Json(source));
  req.set("params", std::move(params));
  return req;
}

ServiceOptions service_options(storage::Vfs& vfs) {
  ServiceOptions opts;
  opts.context.vfs = &vfs;
  opts.context.store_root = "store";
  opts.context.cache_path = "cache/tuning.cache";
  opts.context.jobs = 2;
  opts.journal_dir = "wal";
  return opts;
}

/// Daemon fixture: service + socket server on a serve() thread, stopped
/// through a real shutdown request like a production client would.
class Daemon {
 public:
  explicit Daemon(const std::string& name)
      : svc_(service_options(vfs_)), server_(svc_, socket_path(name)) {
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~Daemon() {
    if (!svc_.shutdown_requested()) {
      try {
        UnixClient stopper(server_.socket_path());
        stopper.call(make_request(0, "shutdown"));
      } catch (const Error&) {
        server_.stop();
      }
    }
    thread_.join();
  }

  const std::string& path() const { return server_.socket_path(); }
  ArtemisService& service() { return svc_; }

 private:
  MemVfs vfs_;
  ArtemisService svc_;
  SocketServer server_;
  std::thread thread_;
};

TEST(ServiceStressTest, ConcurrentSocketClientsCoalesceToOneTunerRun) {
  Daemon daemon("coalesce");
  constexpr int kClients = 6;
  std::vector<Json> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      UnixClient client(daemon.path());
      responses[i] = client.call(make_request(i, "tune", testing::kDagDsl));
    });
  }
  for (auto& t : threads) t.join();

  std::set<std::string> distinct;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(responses[i]["ok"].as_bool()) << responses[i].dump(2);
    EXPECT_EQ(responses[i]["id"].as_int(), i);
    distinct.insert(responses[i]["result"]["plan_bytes"].as_string());
  }
  EXPECT_EQ(distinct.size(), 1u);

  UnixClient client(daemon.path());
  const Json stats = client.call(make_request(99, "stats"));
  ASSERT_TRUE(stats["ok"].as_bool());
  const Json& s = stats["result"]["service"];
  EXPECT_EQ(s["tuner_runs"].as_int(), 1);
  EXPECT_EQ(s["tune_calls"].as_int(), kClients);
  EXPECT_EQ(s["plan_hits"].as_int() + s["dedup_coalesced"].as_int(),
            kClients - 1);
  EXPECT_EQ(s["errors"].as_int(), 0);
}

TEST(ServiceStressTest, DistinctProgramsTuneIndependently) {
  Daemon daemon("distinct");
  const char* programs[] = {artemis::testing::kJacobiDsl,
                            artemis::testing::kDagDsl};
  std::vector<std::string> bytes[2];
  std::vector<std::thread> threads;
  std::mutex mu;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      UnixClient client(daemon.path());
      const Json resp =
          client.call(make_request(i, "tune", programs[i % 2]));
      ASSERT_TRUE(resp["ok"].as_bool()) << resp.dump(2);
      const std::lock_guard<std::mutex> lock(mu);
      bytes[i % 2].push_back(resp["result"]["plan_bytes"].as_string());
    });
  }
  for (auto& t : threads) t.join();

  for (int p = 0; p < 2; ++p) {
    const std::set<std::string> distinct(bytes[p].begin(), bytes[p].end());
    EXPECT_EQ(distinct.size(), 1u) << "program " << p;
  }
  EXPECT_NE(bytes[0].front(), bytes[1].front());
  EXPECT_EQ(daemon.service().stats_snapshot().tuner_runs, 2u);
}

TEST(ServiceStressTest, OneConnectionDrivesTheFullMethodSurface) {
  Daemon daemon("surface");
  UnixClient client(daemon.path());

  Json resp = client.call(make_request(1, "compile", testing::kJacobiDsl));
  ASSERT_TRUE(resp["ok"].as_bool()) << resp.dump(2);
  const std::string key = resp["result"]["plan_key"].as_string();

  resp = client.call(make_request(2, "tune", testing::kJacobiDsl));
  ASSERT_TRUE(resp["ok"].as_bool()) << resp.dump(2);
  EXPECT_EQ(resp["result"]["plan_key"].as_string(), key);
  EXPECT_FALSE(resp["result"]["config"].as_string().empty());
  EXPECT_GT(resp["result"]["tflops"].as_double(), 0.0);

  resp = client.call(make_request(3, "run", testing::kJacobiDsl));
  ASSERT_TRUE(resp["ok"].as_bool()) << resp.dump(2);
  ASSERT_TRUE(resp["result"]["checks"].is_array());
  ASSERT_GE(resp["result"]["checks"].size(), 1u);
  for (const Json& check : resp["result"]["checks"].items()) {
    EXPECT_EQ(check["max_abs_diff"].as_double(), 0.0);
  }

  resp = client.call(make_request(4, "stats"));
  ASSERT_TRUE(resp["ok"].as_bool());
  EXPECT_EQ(resp["result"]["protocol_version"].as_int(), kProtocolVersion);
  EXPECT_EQ(resp["result"]["service"]["requests"].as_int(), 3);
}

// A tune in flight and a shutdown racing it: the in-flight tune must
// complete with a valid plan (the evaluator is never abandoned), and the
// daemon must stop accepting new tunes afterwards.
TEST(ServiceStressTest, ShutdownDoesNotAbandonInFlightTune) {
  Daemon daemon("shutdown");
  // Both connections are established before the shutdown is issued, so
  // neither racer can lose the listening socket.
  UnixClient tune_client(daemon.path());
  UnixClient stopper(daemon.path());
  Json tune_resp;
  std::thread tuner([&] {
    tune_resp = tune_client.call(make_request(1, "tune", testing::kDagDsl));
  });
  const Json resp = stopper.call(make_request(2, "shutdown"));
  ASSERT_TRUE(resp["ok"].as_bool());
  tuner.join();
  // The tune either completed before the shutdown gated it or was
  // refused with the structured shutting_down error — never a hang or a
  // torn response.
  if (tune_resp["ok"].as_bool()) {
    EXPECT_FALSE(tune_resp["result"]["plan_bytes"].as_string().empty());
  } else {
    EXPECT_EQ(tune_resp["error"]["code"].as_string(), "shutting_down");
  }
}

}  // namespace
}  // namespace artemis::service
