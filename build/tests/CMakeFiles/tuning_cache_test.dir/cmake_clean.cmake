file(REMOVE_RECURSE
  "CMakeFiles/tuning_cache_test.dir/tuning_cache_test.cpp.o"
  "CMakeFiles/tuning_cache_test.dir/tuning_cache_test.cpp.o.d"
  "tuning_cache_test"
  "tuning_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
