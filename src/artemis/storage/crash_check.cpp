#include "artemis/storage/crash_check.hpp"

#include <sstream>

#include "artemis/common/str.hpp"

namespace artemis::storage {

std::string CrashSweepReport::summary() const {
  std::ostringstream os;
  os << "checked " << states << " crash states over " << ops << " ops: ";
  if (ok()) {
    os << "OK";
    return os.str();
  }
  os << failures.size() << " FAILED";
  const std::size_t show = std::min<std::size_t>(failures.size(), 3);
  for (std::size_t i = 0; i < show; ++i) {
    os << "\n  [op " << failures[i].op_index << " variant "
       << failures[i].variant << "] " << failures[i].what;
  }
  if (failures.size() > show) {
    os << "\n  ... and " << failures.size() - show << " more";
  }
  return os.str();
}

std::vector<std::uint64_t> default_crash_variants() {
  return {0, 1, 2, 3, 4};
}

CrashSweepReport crash_sweep(const std::vector<VfsOp>& trace,
                             const std::vector<std::uint64_t>& variants,
                             const CrashInvariant& check) {
  CrashSweepReport report;
  report.ops = trace.size();
  for (std::size_t k = 0; k <= trace.size(); ++k) {
    for (const std::uint64_t variant : variants) {
      ++report.states;
      auto vfs = replay_prefix(trace, k, variant);
      std::string what;
      try {
        what = check(*vfs);
      } catch (const std::exception& e) {
        what = str_cat("invariant threw: ", e.what());
      }
      if (!what.empty()) {
        report.failures.push_back({k, variant, std::move(what)});
      }
    }
  }
  return report;
}

std::string check_plan_store_state(
    MemVfs& vfs, const std::string& root,
    const std::map<std::string, PlanRecord>& expected) {
  // 1. Published records: decodable, faithful, and never unexpected.
  //    (Published = visible under objects/ — the commit point is rename,
  //    so anything visible must be complete and correct.)
  const std::string objects = str_cat(root, "/objects");
  for (const auto& shard : vfs.list(objects)) {
    for (const auto& name : vfs.list(str_cat(objects, "/", shard))) {
      const auto bytes = vfs.read(str_cat(objects, "/", shard, "/", name));
      if (!bytes.has_value()) {
        return str_cat("published object ", name, " unreadable");
      }
      PlanRecord rec;
      const DecodeStatus status = decode_plan_record(*bytes, &rec);
      if (status != DecodeStatus::Ok) {
        return str_cat("published object ", name, " decodes as ",
                       decode_status_name(status));
      }
      const auto want = expected.find(rec.key);
      if (want == expected.end()) {
        return str_cat("published object ", name,
                       " has a key the workload never put");
      }
      if (encode_plan_record(rec) != encode_plan_record(want->second)) {
        return str_cat("published object ", name,
                       " differs from what was put");
      }
    }
  }

  // 2-3. Recovery opens cleanly and every published key still hits.
  try {
    PlanStore store(vfs, root);
    for (const auto& key : store.keys()) {
      if (!store.get(key).has_value()) {
        return str_cat("published key ", key, " missed after recovery");
      }
    }

    // 4. The recovered store still accepts and serves new plans.
    PlanRecord probe;
    probe.key = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    probe.config = "probe";
    probe.time_s = 1.0;
    probe.tflops = 2.0;
    if (!store.put(probe)) return "probe put failed after recovery";
    const auto back = store.get(probe.key);
    if (!back.has_value() || back->config != "probe") {
      return "probe get failed after recovery";
    }
  } catch (const std::exception& e) {
    return str_cat("recovery threw: ", e.what());
  }
  return "";
}

}  // namespace artemis::storage
