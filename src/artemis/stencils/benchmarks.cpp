#include "artemis/stencils/benchmarks.hpp"

#include <array>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"

namespace artemis::stencils {

namespace {

/// "arr[k+dk][j+dj][i+di]" (3D access).
std::string at(const std::string& arr, int dk, int dj, int di) {
  auto idx = [](const char* it, int off) {
    if (off == 0) return std::string(it);
    if (off > 0) return str_cat(it, "+", off);
    return str_cat(it, off);
  };
  return str_cat(arr, "[", idx("k", dk), "][", idx("j", dj), "][",
                 idx("i", di), "]");
}

/// Offset access along one axis: dim 0 = k, 1 = j, 2 = i.
std::string at_dim(const std::string& arr, int dim, int off) {
  const int dk = dim == 0 ? off : 0;
  const int dj = dim == 1 ? off : 0;
  const int di = dim == 2 ? off : 0;
  return at(arr, dk, dj, di);
}

/// Order-4 central first derivative along `dim`, 11 FLOPs:
/// c1*(A[+1]-A[-1]) + c2*(A[+2]-A[-2]) + c3*(A[+3]-A[-3]) + c4*(A[+4]-A[-4])
std::string d4(const std::string& arr, int dim) {
  std::vector<std::string> groups;
  const char* coeff[] = {"0.8", "0.2", "0.038", "0.0035"};
  for (int o = 1; o <= 4; ++o) {
    groups.push_back(str_cat(coeff[o - 1], "*(", at_dim(arr, dim, o), " - ",
                             at_dim(arr, dim, -o), ")"));
  }
  return join(groups, " + ");
}

/// Order-2 central first derivative along `dim`, 5 FLOPs.
std::string d2(const std::string& arr, int dim, const std::string& c1,
               const std::string& c2) {
  return str_cat(c1, "*(", at_dim(arr, dim, 1), " - ", at_dim(arr, dim, -1),
                 ") + ", c2, "*(", at_dim(arr, dim, 2), " - ",
                 at_dim(arr, dim, -2), ")");
}

std::string header3d(std::int64_t n) {
  return str_cat("parameter L=", n, ", M=", n, ", N=", n,
                 ";\niterator k, j, i;\n");
}

// --------------------------------------------------------------------------
// HPGMG smoothers and the denoise pipeline (written out).
// --------------------------------------------------------------------------

std::string gen_7pt(std::int64_t n, int t) {
  return str_cat(header3d(n), R"(double u[L,M,N], un[L,M,N], a, b;
copyin u, a, b;
#pragma stream k block (32,16)
stencil smooth (UN, U, a, b) {
  UN[k][j][i] = a*U[k][j][i] - b*(U[k][j][i+1] + U[k][j][i-1]
    + U[k][j+1][i] + U[k][j-1][i] + U[k+1][j][i] + U[k-1][j][i]
    - U[k][j][i]*6.0);
}
iterate )",
                 t, R"( {
  smooth (un, u, a, b);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_27pt(std::int64_t n, int t) {
  // 27-point weighted smoother: center + 6 faces + 12 edges + 8 corners.
  std::vector<std::string> faces, edges, corners;
  for (int dk = -1; dk <= 1; ++dk) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int di = -1; di <= 1; ++di) {
        const int nz = std::abs(dk) + std::abs(dj) + std::abs(di);
        const std::string a = at("U", dk, dj, di);
        if (nz == 1) faces.push_back(a);
        if (nz == 2) edges.push_back(a);
        if (nz == 3) corners.push_back(a);
      }
    }
  }
  return str_cat(header3d(n),
                 "double u[L,M,N], un[L,M,N], w0, w1, w2, w3, c;\n"
                 "copyin u, w0, w1, w2, w3, c;\n"
                 "#pragma stream k block (32,16)\n"
                 "stencil smooth (UN, U, w0, w1, w2, w3, c) {\n"
                 "  UN[k][j][i] = w0*U[k][j][i]\n    + w1*(",
                 join(faces, " + "), ")\n    + w2*(", join(edges, " + "),
                 ")\n    + w3*(", join(corners, " + "),
                 ")\n    - c*U[k][j][i];\n}\niterate ", t,
                 " {\n  smooth (un, u, w0, w1, w2, w3, c);\n"
                 "  swap (un, u);\n}\ncopyout u;\n");
}

std::string gen_helmholtz(std::int64_t n, int t) {
  return str_cat(header3d(n), R"(double u[L,M,N], un[L,M,N], a, b, h2inv;
copyin u, a, b, h2inv;
#pragma stream k block (32,16)
stencil helm (UN, U, a, b, h2inv) {
  double s1 = U[k][j][i+1] + U[k][j][i-1] + U[k][j+1][i] + U[k][j-1][i]
    + U[k+1][j][i] + U[k-1][j][i];
  double s2 = U[k][j][i+2] + U[k][j][i-2] + U[k][j+2][i] + U[k][j-2][i]
    + U[k+2][j][i] + U[k-2][j][i];
  UN[k][j][i] = a*U[k][j][i] - b*(s1 + h2inv*s2 - 6.0*U[k][j][i]);
}
iterate )",
                 t, R"( {
  helm (un, u, a, b, h2inv);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_denoise(std::int64_t n, int t) {
  // CDSC-style denoise: a diffusion-coefficient stage followed by the
  // weighted update; two stencils per iteration (multi-statement DAG).
  return str_cat(header3d(n),
                 R"(double u[L,M,N], un[L,M,N], g[L,M,N], f[L,M,N], eps, dt, gamma;
copyin u, f, eps, dt, gamma;
#pragma stream k block (32,16)
stencil diffus (G, U, eps) {
  double dx = U[k][j][i] - U[k][j][i+1];
  double dy = U[k][j][i] - U[k][j+1][i];
  double dz = U[k][j][i] - U[k+1][j][i];
  double dx2 = U[k][j][i] - U[k][j][i-1];
  double dy2 = U[k][j][i] - U[k][j-1][i];
  double dz2 = U[k][j][i] - U[k-1][j][i];
  double cx = 0.5*(U[k][j][i+1] - U[k][j][i-1]);
  double cy = 0.5*(U[k][j+1][i] - U[k][j-1][i]);
  double cz = 0.5*(U[k+1][j][i] - U[k-1][j][i]);
  G[k][j][i] = 1.0 / sqrt(eps + dx*dx + dy*dy + dz*dz
    + dx2*dx2 + dy2*dy2 + dz2*dz2
    + 0.25*(cx*cx + cy*cy + cz*cz));
}
stencil update (UN, U, G, F, dt, gamma) {
  double num = U[k][j][i] + dt*(U[k][j][i+1]*G[k][j][i+1]
    + U[k][j][i-1]*G[k][j][i-1] + U[k][j+1][i]*G[k][j+1][i]
    + U[k][j-1][i]*G[k][j-1][i] + U[k+1][j][i]*G[k+1][j][i]
    + U[k-1][j][i]*G[k-1][j][i] + gamma*F[k][j][i]);
  double den = 1.0 + dt*(G[k][j][i+1] + G[k][j][i-1] + G[k][j+1][i]
    + G[k][j-1][i] + G[k+1][j][i] + G[k-1][j][i] + gamma);
  UN[k][j][i] = num / den;
}
iterate )",
                 t, R"( {
  diffus (g, u, eps);
  update (un, u, g, f, dt, gamma);
  swap (un, u);
}
copyout u;
)");
}

// --------------------------------------------------------------------------
// ExpCNS synthesized kernels: miniflux, hypterm, diffterm.
// --------------------------------------------------------------------------

std::string gen_miniflux(std::int64_t n, int /*t*/) {
  std::string decls =
      "double dx0, dx1, dy0, dy1, dz0, dz1;\ncopyin dx0, dx1, dy0, dy1, "
      "dz0, dz1";
  std::string arrays = "double ";
  std::vector<std::string> arr_names;
  for (int c = 0; c < 5; ++c) arr_names.push_back(str_cat("flux", c));
  for (int c = 0; c < 5; ++c) arr_names.push_back(str_cat("q", c));
  for (int c = 0; c < 5; ++c) arr_names.push_back(str_cat("cons", c));
  for (int c = 0; c < 3; ++c) arr_names.push_back(str_cat("vel", c));
  arr_names.push_back("pres");
  arr_names.push_back("rho");
  for (int c = 0; c < 5; ++c) arr_names.push_back(str_cat("aux", c));
  std::vector<std::string> withdims;
  for (const auto& a : arr_names) withdims.push_back(a + "[L,M,N]");
  arrays += join(withdims, ", ") + ";\n";

  std::string copyin = "copyin ";
  std::vector<std::string> ins(arr_names.begin() + 5, arr_names.end());
  copyin += join(ins, ", ") + ";\n";

  std::string body;
  std::vector<std::string> params = {"F0", "F1", "F2", "F3", "F4"};
  std::vector<std::string> args;
  for (int c = 0; c < 5; ++c) args.push_back(str_cat("flux", c));
  for (const auto& a : ins) {
    params.push_back("p_" + a);
    args.push_back(a);
  }
  params.insert(params.end(),
                {"dx0", "dx1", "dy0", "dy1", "dz0", "dz1"});
  args.insert(args.end(), {"dx0", "dx1", "dy0", "dy1", "dz0", "dz1"});

  for (int c = 0; c < 5; ++c) {
    const std::string q = str_cat("p_q", c);
    const std::string cons = str_cat("p_cons", c);
    const std::string aux = str_cat("p_aux", c);
    body += str_cat(
        "  F", c, "[k][j][i] = ", d2(q, 2, "dx0", "dx1"), "\n    + ",
        d2(q, 1, "dy0", "dy1"), "\n    + ", d2(q, 0, "dz0", "dz1"),
        "\n    + ", cons,
        "[k][j][i]*(p_vel0[k][j][i] + p_vel1[k][j][i] + p_vel2[k][j][i])",
        "\n    + ", aux, "[k][j][i]*p_pres[k][j][i] - p_rho[k][j][i]*", q,
        "[k][j][i] - 2.0*", q, "[k][j][i];\n");
  }

  return str_cat(header3d(n), arrays, decls, ";\n", copyin,
                 "#pragma block (32,8)\nstencil miniflux (",
                 join(params, ", "), ") {\n", body, "}\nminiflux (",
                 join(args, ", "), ");\ncopyout flux0, flux1, flux2, flux3, "
                 "flux4;\n");
}

std::string gen_hypterm(std::int64_t n, int /*t*/) {
  // 5 outputs + 8 inputs (q0..3, cons0..3): 13 arrays, order 4.
  std::string arrays = "double ";
  std::vector<std::string> withdims;
  for (int c = 0; c < 5; ++c) withdims.push_back(str_cat("flux", c, "[L,M,N]"));
  for (int c = 0; c < 4; ++c) withdims.push_back(str_cat("q", c, "[L,M,N]"));
  for (int c = 0; c < 4; ++c) {
    withdims.push_back(str_cat("cons", c, "[L,M,N]"));
  }
  arrays += join(withdims, ", ") + ";\n";
  std::string copyin = "copyin ";
  std::vector<std::string> ins;
  for (int c = 0; c < 4; ++c) ins.push_back(str_cat("q", c));
  for (int c = 0; c < 4; ++c) ins.push_back(str_cat("cons", c));
  copyin += join(ins, ", ") + ";\n";

  std::vector<std::string> params, args;
  for (int c = 0; c < 5; ++c) {
    params.push_back(str_cat("F", c));
    args.push_back(str_cat("flux", c));
  }
  for (const auto& a : ins) {
    params.push_back("p_" + a);
    args.push_back(a);
  }

  std::string body;
  for (int c = 0; c < 5; ++c) {
    const std::string qa = str_cat("p_q", c % 4);
    const std::string qb = str_cat("p_q", (c + 1) % 4);
    const std::string qc = str_cat("p_q", (c + 2) % 4);
    const std::string ca = str_cat("p_cons", c % 4);
    const std::string cb = str_cat("p_cons", (c + 1) % 4);
    body += str_cat("  F", c, "[k][j][i] = (", d4(qa, 2), ")\n    + (",
                    d4(qb, 1), ")\n    + (", d4(qc, 0), ")\n    + ", ca,
                    "[k][j][i]*(", d4(cb, 2), ")\n    + ", qa,
                    "[k][j][i]*(", d4(ca, 1), ")\n    + ", cb,
                    "[k][j][i]*(", d4(qc, 2), ");\n");
  }
  return str_cat(header3d(n), arrays, copyin,
                 "#pragma block (32,8)\nstencil hypterm (",
                 join(params, ", "), ") {\n", body, "}\nhypterm (",
                 join(args, ", "),
                 ");\ncopyout flux0, flux1, flux2, flux3, flux4;\n");
}

std::string gen_diffterm(std::int64_t n, int /*t*/) {
  // 4 outputs + 7 inputs: 11 arrays, order 4, with first+second derivative
  // combinations per output.
  std::vector<std::string> withdims;
  for (int c = 0; c < 4; ++c) {
    withdims.push_back(str_cat("dflux", c, "[L,M,N]"));
  }
  for (int c = 0; c < 7; ++c) withdims.push_back(str_cat("q", c, "[L,M,N]"));
  const std::string arrays = "double " + join(withdims, ", ") + ";\n";
  std::vector<std::string> ins;
  for (int c = 0; c < 7; ++c) ins.push_back(str_cat("q", c));
  const std::string copyin = "copyin " + join(ins, ", ") + ";\n";

  std::vector<std::string> params, args;
  for (int c = 0; c < 4; ++c) {
    params.push_back(str_cat("D", c));
    args.push_back(str_cat("dflux", c));
  }
  for (const auto& a : ins) {
    params.push_back("p_" + a);
    args.push_back(a);
  }

  std::string body;
  for (int c = 0; c < 4; ++c) {
    const std::string qa = str_cat("p_q", c % 7);
    const std::string qb = str_cat("p_q", (c + 1) % 7);
    const std::string qc = str_cat("p_q", (c + 2) % 7);
    const std::string qd = str_cat("p_q", (c + 3) % 7);
    body += str_cat("  double t", c, "x = ", d4(qa, 2), ";\n");
    body += str_cat("  double t", c, "y = ", d4(qb, 1), ";\n");
    body += str_cat("  double t", c, "z = ", d4(qc, 0), ";\n");
    body += str_cat("  D", c, "[k][j][i] = t", c, "x + t", c, "y + t", c,
                    "z\n    + ", qd, "[k][j][i]*(", d4(qd, 2), ")\n    + ",
                    qa, "[k][j][i]*(", d4(qb, 0), ")\n    + t", c, "x*t", c,
                    "y + t", c, "y*t", c, "z\n    + 0.5*(", d4(qc, 1),
                    ")\n    + (", d4(qd, 1), ");\n");
  }
  return str_cat(header3d(n), arrays, copyin,
                 "#pragma block (32,8)\nstencil diffterm (",
                 join(params, ", "), ") {\n", body, "}\ndiffterm (",
                 join(args, ", "),
                 ");\ncopyout dflux0, dflux1, dflux2, dflux3;\n");
}

// --------------------------------------------------------------------------
// SW4lite synthesized kernels: addsgd4/6, rhs4center, rhs4sgcurv.
// --------------------------------------------------------------------------

/// Super-grid damping term: order-`r` damping stencil along `dim` for one
/// component group, using 1D stretch/damping coefficient arrays.
std::string sgd_dim_term(int dim, int r, const std::string& weight) {
  // 1D coefficient arrays are indexed by the iterator of their own axis.
  const char* iter = dim == 0 ? "k" : (dim == 1 ? "j" : "i");
  const char* dc = dim == 0 ? "p_dcz" : (dim == 1 ? "p_dcy" : "p_dcx");
  const char* st = dim == 0 ? "p_strz" : (dim == 1 ? "p_stry" : "p_strx");
  std::vector<std::string> terms;
  for (int off = -r; off <= r; ++off) {
    // Binomial-style alternating damping weights; the 1D damping
    // coefficient applies at each offset, like SW4's dcx/dcy/dcz.
    const double bw = (std::abs(off) % 2 == 0 ? 1.0 : -4.0) /
                      (std::abs(off) + 1.0);
    std::string dc_off = str_cat(dc, "[", iter);
    if (off > 0) dc_off += str_cat("+", off);
    if (off < 0) dc_off += str_cat(off);
    dc_off += "]";
    terms.push_back(str_cat(format_double(bw, 6), "*(",
                            at_dim("p_rho", dim, off), " + p_rho[k][j][i])*(",
                            at_dim("p_u", dim, off), " - ",
                            at_dim("p_um", dim, off), ")*", dc_off, "*",
                            weight));
  }
  return str_cat(st, "[", iter, "]*(", join(terms, "\n      + "), ")");
}

std::string gen_addsgd(std::int64_t n, int r, bool with_assign = true) {
  // r = 2 -> addsgd4 (order 2), r = 3 -> addsgd6 (order 3).
  std::string arrays =
      "double up[L,M,N], u[L,M,N], um[L,M,N], rho[L,M,N], "
      "dcx[N], dcy[M], dcz[L], strx[N], stry[M], strz[L], beta;\n";
  std::string copyin =
      "copyin up, u, um, rho, dcx, dcy, dcz, strx, stry, strz, beta;\n";

  std::string body;
  // Component groups per dimension (the displacement components of SW4
  // share the same arrays in this synthesis); the 6th-order variant also
  // carries a corrector group.
  const std::vector<std::string> weights =
      r >= 3 ? std::vector<std::string>{"c1", "c2", "c3", "c4"}
             : std::vector<std::string>{"c1", "c2", "c3"};
  body += "  double c1 = beta * 1.0;\n";
  body += "  double c2 = beta * 0.5;\n";
  body += "  double c3 = beta * 0.25;\n";
  if (r >= 3) body += "  double c4 = beta * 0.125;\n";
  std::vector<std::string> terms;
  for (int dim = 0; dim < 3; ++dim) {
    for (const auto& w : weights) {
      terms.push_back(sgd_dim_term(dim, r, w));
    }
  }
  body += str_cat("  UP[k][j][i] += ", join(terms, "\n    + "), ";\n");

  return str_cat(
      header3d(n), arrays, copyin,
      "#pragma block (16,16)\n"
      "stencil addsgd (UP, p_u, p_um, p_rho, p_dcx, p_dcy, p_dcz, "
      "p_strx, p_stry, p_strz, beta) {\n",
      with_assign
          ? "  #assign gmem (p_dcx, p_dcy, p_dcz, p_strx, p_stry, p_strz)\n"
          : "", body,
      "}\naddsgd (up, u, um, rho, dcx, dcy, dcz, strx, stry, strz, "
      "beta);\ncopyout up;\n");
}

/// Second-difference term with variable coefficients (SW4 style):
/// m1*(U[-2]-U[0]) + m2*(U[-1]-U[0]) + m3*(U[+1]-U[0]) + m4*(U[+2]-U[0])
std::string var_coeff_d2(const std::string& u, int dim, const std::string& m1,
                         const std::string& m2, const std::string& m3,
                         const std::string& m4) {
  return str_cat(m1, "*(", at_dim(u, dim, -2), " - ", at_dim(u, dim, 0),
                 ") + ", m2, "*(", at_dim(u, dim, -1), " - ",
                 at_dim(u, dim, 0), ")\n      + ", m3, "*(",
                 at_dim(u, dim, 1), " - ", at_dim(u, dim, 0), ") + ", m4,
                 "*(", at_dim(u, dim, 2), " - ", at_dim(u, dim, 0), ")");
}

/// Cross-derivative d2/(da db): order-2 mixed difference, 3 quartets deep.
std::string cross_term(const std::string& u, int dima, int dimb,
                       const std::string& coef) {
  auto at2 = [&](int oa, int ob) {
    const int dk = (dima == 0 ? oa : 0) + (dimb == 0 ? ob : 0);
    const int dj = (dima == 1 ? oa : 0) + (dimb == 1 ? ob : 0);
    const int di = (dima == 2 ? oa : 0) + (dimb == 2 ? ob : 0);
    return at(u, dk, dj, di);
  };
  return str_cat(
      coef, "*(", at2(1, 1), " - ", at2(1, -1), " - ", at2(-1, 1), " + ",
      at2(-1, -1), "\n      + 0.25*(", at2(2, 2), " - ", at2(2, -2), " - ",
      at2(-2, 2), " + ", at2(-2, -2), ")\n      + 0.5*(", at2(1, 2), " - ",
      at2(1, -2), " - ", at2(-1, 2), " + ", at2(-1, -2), "))");
}

/// Per-dimension variable-coefficient temporaries, Fig. 3 style
/// (mux1..muz4 and their la counterparts).
std::string mu_temps(int dim, const char* base, const char* arr_a,
                     const char* arr_b) {
  const char* names[3] = {"z", "y", "x"};
  std::string out;
  for (int v = 1; v <= 4; ++v) {
    const int center = v - 2;  // -1, 0, 1, 2
    out += str_cat("  double ", base, names[dim], v, " = ",
                   at_dim(arr_a, dim, center), " + 0.75*(",
                   at_dim(arr_b, dim, center), " + ",
                   at_dim(arr_a, dim, center == 2 ? 1 : center + 1),
                   ") - 0.25*", at_dim(arr_b, dim, 0), ";\n");
  }
  return out;
}

std::string gen_rhs4center(std::int64_t n, int /*t*/) {
  std::string arrays =
      "double uacc0[L,M,N], uacc1[L,M,N], uacc2[L,M,N], u0[L,M,N], "
      "u1[L,M,N], u2[L,M,N], mu[L,M,N], la[L,M,N], h;\n";
  std::string copyin = "copyin u0, u1, u2, mu, la, h;\n";

  std::string body;
  for (int dim = 0; dim < 3; ++dim) {
    body += mu_temps(dim, "mu", "p_mu", "p_la");
    body += mu_temps(dim, "la", "p_la", "p_mu");
  }
  const char* dn[3] = {"z", "y", "x"};
  for (int c = 0; c < 3; ++c) {
    const std::string u = str_cat("p_u", c);
    std::vector<std::string> terms;
    for (int dim = 0; dim < 3; ++dim) {
      terms.push_back(
          var_coeff_d2(u, dim, str_cat("mu", dn[dim], 1),
                       str_cat("mu", dn[dim], 2), str_cat("mu", dn[dim], 3),
                       str_cat("mu", dn[dim], 4)));
      terms.push_back(
          var_coeff_d2(u, dim, str_cat("la", dn[dim], 1),
                       str_cat("la", dn[dim], 2), str_cat("la", dn[dim], 3),
                       str_cat("la", dn[dim], 4)));
    }
    // Mixed derivatives coupling the other two components (each pair of
    // dimensions, both coupling coefficients).
    const std::string ua = str_cat("p_u", (c + 1) % 3);
    const std::string ub = str_cat("p_u", (c + 2) % 3);
    for (const auto& [comp, dima, dimb, coef] :
         {std::tuple{&ua, 2, 1, "p_la"}, std::tuple{&ua, 2, 0, "p_mu"},
          std::tuple{&ua, 1, 0, "p_la"}, std::tuple{&ub, 2, 1, "p_mu"},
          std::tuple{&ub, 2, 0, "p_la"}, std::tuple{&ub, 1, 0, "p_mu"}}) {
      terms.push_back(cross_term(*comp, dima, dimb, at(coef, 0, 0, 0)));
    }
    body += str_cat("  UACC", c, "[k][j][i] = h*(", join(terms, "\n    + "),
                    ");\n");
  }
  return str_cat(
      header3d(n), arrays, copyin,
      "#pragma block (16,16)\n"
      "stencil rhs4center (UACC0, UACC1, UACC2, p_u0, p_u1, p_u2, p_mu, "
      "p_la, h) {\n",
      body,
      "}\nrhs4center (uacc0, uacc1, uacc2, u0, u1, u2, mu, la, h);\n"
      "copyout uacc0, uacc1, uacc2;\n");
}

std::string gen_rhs4sgcurv(std::int64_t n, int /*t*/) {
  // Curvilinear variant: every derivative is contracted with metric terms
  // met1..met4 and scaled by the Jacobian, roughly 3x the FLOPs of
  // rhs4center. 3 outputs + 10 inputs = 13 arrays.
  std::string arrays =
      "double lu0[L,M,N], lu1[L,M,N], lu2[L,M,N], u0[L,M,N], u1[L,M,N], "
      "u2[L,M,N], mu[L,M,N], la[L,M,N], met1[L,M,N], met2[L,M,N], "
      "met3[L,M,N], met4[L,M,N], jac[L,M,N];\n";
  std::string copyin =
      "copyin u0, u1, u2, mu, la, met1, met2, met3, met4, jac;\n";

  std::string body;
  // met*_c locals first (read the metric arrays once).
  for (int m = 1; m <= 4; ++m) {
    body += str_cat("  double met", m, "_c = ",
                    at(str_cat("p_met", m), 0, 0, 0), ";\n");
  }
  // Metric contraction temporaries.
  for (int m = 1; m <= 4; ++m) {
    body += str_cat("  double mm", m, " = met", m, "_c*met", m, "_c;\n");
  }
  for (int dim = 0; dim < 3; ++dim) {
    body += mu_temps(dim, "mu", "p_mu", "p_la");
    body += mu_temps(dim, "la", "p_la", "p_mu");
  }

  const char* dn[3] = {"z", "y", "x"};
  for (int c = 0; c < 3; ++c) {
    // Curvilinear coordinates couple every displacement component into
    // every output: var-coeff second differences for all three components
    // along all three dimensions with metric contractions, plus mixed
    // derivatives for every dimension pair and both Lame coefficients.
    std::vector<std::string> terms;
    for (int comp = 0; comp < 3; ++comp) {
      const std::string u = str_cat("p_u", comp);
      for (int dim = 0; dim < 3; ++dim) {
        terms.push_back(str_cat(
            "mm", 1 + (dim + comp) % 4, "*(",
            var_coeff_d2(u, dim, str_cat("mu", dn[dim], 1),
                         str_cat("mu", dn[dim], 2), str_cat("mu", dn[dim], 3),
                         str_cat("mu", dn[dim], 4)),
            ")"));
        terms.push_back(str_cat(
            "mm", 1 + (dim + comp + 1) % 4, "*(",
            var_coeff_d2(u, dim, str_cat("la", dn[dim], 1),
                         str_cat("la", dn[dim], 2), str_cat("la", dn[dim], 3),
                         str_cat("la", dn[dim], 4)),
            ")"));
      }
      for (int dima = 0; dima < 3; ++dima) {
        for (int dimb = dima + 1; dimb < 3; ++dimb) {
          terms.push_back(cross_term(u, dima, dimb,
                                     str_cat("met", dima + 1, "_c*met",
                                             dimb + 1, "_c*",
                                             at("p_la", 0, 0, 0))));
          terms.push_back(cross_term(u, dima, dimb,
                                     str_cat("met", dimb + 2, "_c*",
                                             at("p_mu", 0, 0, 0))));
        }
      }
    }
    body += str_cat("  LU", c, "[k][j][i] = (", join(terms, "\n    + "),
                    ") / ", at("p_jac", 0, 0, 0), ";\n");
  }
  return str_cat(
      header3d(n), arrays, copyin,
      "#pragma block (16,16)\n"
      "stencil rhs4sgcurv (LU0, LU1, LU2, p_u0, p_u1, p_u2, p_mu, p_la, "
      "p_met1, p_met2, p_met3, p_met4, p_jac) {\n",
      body,
      "}\nrhs4sgcurv (lu0, lu1, lu2, u0, u1, u2, mu, la, met1, met2, met3, "
      "met4, jac);\ncopyout lu0, lu1, lu2;\n");
}

std::vector<BenchmarkSpec> make_specs() {
  std::vector<BenchmarkSpec> specs;
  auto add = [&](std::string name, std::int64_t dom, int t, int k,
                 std::int64_t flops, int arrays, bool iterative,
                 std::function<std::string(std::int64_t, int)> gen) {
    BenchmarkSpec s;
    s.name = std::move(name);
    s.domain = dom;
    s.time_steps = t;
    s.order = k;
    s.paper_flops = flops;
    s.paper_arrays = arrays;
    s.iterative = iterative;
    s.generator = std::move(gen);
    specs.push_back(std::move(s));
  };
  add("7pt-smoother", 512, 12, 1, 10, 2, true, gen_7pt);
  add("27pt-smoother", 512, 12, 1, 32, 2, true, gen_27pt);
  add("helmholtz", 512, 12, 2, 17, 2, true, gen_helmholtz);
  add("denoise", 512, 12, 1, 61, 4, true, gen_denoise);
  add("miniflux", 320, 1, 2, 135, 25, false, gen_miniflux);
  add("hypterm", 320, 1, 4, 358, 13, false, gen_hypterm);
  add("diffterm", 320, 1, 4, 415, 11, false, gen_diffterm);
  add("addsgd4", 320, 1, 2, 373, 10, false,
      [](std::int64_t e, int) { return gen_addsgd(e, 2); });
  add("addsgd6", 320, 1, 3, 626, 10, false,
      [](std::int64_t e, int) { return gen_addsgd(e, 3); });
  add("rhs4center", 320, 1, 2, 666, 8, false, gen_rhs4center);
  add("rhs4sgcurv", 320, 1, 2, 2126, 13, false, gen_rhs4sgcurv);
  return specs;
}

}  // namespace

std::string addsgd_dsl(std::int64_t extent, int r, bool with_assign) {
  return gen_addsgd(extent > 0 ? extent : 320, r, with_assign);
}

std::string BenchmarkSpec::dsl(std::int64_t extent, int t) const {
  return generator(extent > 0 ? extent : domain,
                   t >= 0 ? t : time_steps);
}

const std::vector<BenchmarkSpec>& paper_benchmarks() {
  static const std::vector<BenchmarkSpec> specs = make_specs();
  return specs;
}

const BenchmarkSpec& benchmark(const std::string& name) {
  for (const auto& s : paper_benchmarks()) {
    if (s.name == name) return s;
  }
  throw Error(str_cat("unknown benchmark '", name, "'"));
}

ir::Program benchmark_program(const std::string& name, std::int64_t extent,
                              int t) {
  return dsl::parse(benchmark(name).dsl(extent, t));
}

}  // namespace artemis::stencils
