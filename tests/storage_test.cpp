#include <gtest/gtest.h>

#include <set>

#include "artemis/common/hash.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/ir/content_hash.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::storage {
namespace {

// --- hashing primitives ----------------------------------------------------

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(s), 0xcbf43926u);
  EXPECT_EQ(crc32_hex(crc32(s)), "cbf43926");
}

TEST(Crc32, HexRoundTrip) {
  std::uint32_t out = 0;
  ASSERT_TRUE(parse_crc32_hex("deadbeef", &out));
  EXPECT_EQ(out, 0xdeadbeefu);
  EXPECT_FALSE(parse_crc32_hex("deadbee", &out));    // too short
  EXPECT_FALSE(parse_crc32_hex("deadbeefa", &out));  // too long
  EXPECT_FALSE(parse_crc32_hex("deadbeeg", &out));   // not hex
  EXPECT_FALSE(parse_crc32_hex("DEADBEEF", &out));   // canonical = lowercase
}

TEST(ContentHasher, DeterministicAndSensitive) {
  ContentHasher a, b;
  a.update("hello");
  b.update("hel");
  b.update("lo");
  EXPECT_EQ(a.hex_digest(), b.hex_digest());  // chunking-invariant
  EXPECT_EQ(a.hex_digest().size(), 32u);
  ContentHasher c;
  c.update("hellp");
  EXPECT_NE(a.hex_digest(), c.hex_digest());
}

// --- IR content hash -------------------------------------------------------

constexpr const char* kProg = R"(
parameter N=64;
iterator k, j, i;
double u[N,N,N], un[N,N,N];
copyin u;
stencil s (UN, U) {
  UN[k][j][i] = 0.5*(U[k][j][i+1] + U[k][j][i-1]);
}
iterate 4 {
  s (un, u);
  swap (un, u);
}
copyout u;
)";

TEST(IrContentHash, FormattingInsensitive) {
  const auto a = dsl::parse(kProg);
  // Same program, different whitespace and comments.
  std::string mangled = kProg;
  mangled.insert(0, "// a comment\n\n");
  const auto b = dsl::parse(mangled);
  EXPECT_EQ(ir::content_hash(a), ir::content_hash(b));
  EXPECT_EQ(ir::content_hash(a).size(), 32u);
}

TEST(IrContentHash, SemanticChangesChangeTheHash) {
  const std::string base = kProg;
  const auto h0 = ir::content_hash(dsl::parse(base));
  // A coefficient change.
  std::string coeff = base;
  coeff.replace(coeff.find("0.5"), 3, "0.6");
  EXPECT_NE(ir::content_hash(dsl::parse(coeff)), h0);
  // An offset change.
  std::string off = base;
  off.replace(off.find("i+1"), 3, "i+2");
  EXPECT_NE(ir::content_hash(dsl::parse(off)), h0);
  // An iteration-count change.
  std::string iters = base;
  iters.replace(iters.find("iterate 4"), 9, "iterate 5");
  EXPECT_NE(ir::content_hash(dsl::parse(iters)), h0);
}

TEST(PlanStoreKey, DeviceAndTunerVersionAreIdentity) {
  const auto prog = dsl::parse(kProg);
  const auto a = plan_store_key(prog, "P100", 1);
  EXPECT_EQ(a, plan_store_key(prog, "P100", 1));
  EXPECT_NE(a, plan_store_key(prog, "V100", 1));
  EXPECT_NE(a, plan_store_key(prog, "P100", 2));
  EXPECT_EQ(a.size(), 32u);
}

// --- record codec ----------------------------------------------------------

PlanRecord sample_record() {
  PlanRecord rec;
  rec.key = "0123456789abcdef0123456789abcdef";
  rec.config = "block=8,8,4 unroll=1,1,1";
  rec.time_s = 1.25e-3;
  rec.tflops = 3.5;
  rec.meta["device"] = "P100";
  rec.meta["strategy"] = "artemis";
  return rec;
}

TEST(PlanRecordCodec, RoundTrips) {
  const PlanRecord rec = sample_record();
  const std::string bytes = encode_plan_record(rec);
  PlanRecord back;
  ASSERT_EQ(decode_plan_record(bytes, &back), DecodeStatus::Ok);
  EXPECT_EQ(back.key, rec.key);
  EXPECT_EQ(back.config, rec.config);
  EXPECT_DOUBLE_EQ(back.time_s, rec.time_s);
  EXPECT_DOUBLE_EQ(back.tflops, rec.tflops);
  EXPECT_EQ(back.meta, rec.meta);
  // Encoding is canonical: encode(decode(x)) == x.
  EXPECT_EQ(encode_plan_record(back), bytes);
}

TEST(PlanRecordCodec, ClassifiesEveryFailureMode) {
  const std::string bytes = encode_plan_record(sample_record());
  // Every strict prefix is Torn or Malformed — never Ok, never CrcMismatch
  // presented as Ok.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const DecodeStatus s = decode_plan_record(bytes.substr(0, n), nullptr);
    EXPECT_TRUE(s == DecodeStatus::Torn || s == DecodeStatus::Malformed)
        << "prefix of " << n << " bytes decoded as "
        << decode_status_name(s);
  }
  // A flipped payload byte is a checksum failure.
  std::string flipped = bytes;
  flipped[bytes.size() - 2] ^= 0x20;
  EXPECT_EQ(decode_plan_record(flipped, nullptr), DecodeStatus::CrcMismatch);
  // A future version is skew, not garbage.
  std::string skew = bytes;
  skew.replace(skew.find(" v1 "), 4, " v9 ");
  EXPECT_EQ(decode_plan_record(skew, nullptr), DecodeStatus::VersionSkew);
  // Arbitrary bytes are malformed.
  EXPECT_EQ(decode_plan_record("not a record\nat all\n", nullptr),
            DecodeStatus::Malformed);
  EXPECT_EQ(decode_plan_record("", nullptr), DecodeStatus::Torn);
}

// --- MemVfs ----------------------------------------------------------------

TEST(MemVfs, DataIsVolatileUntilSync) {
  MemVfs vfs;
  auto f = vfs.create("wal", false);
  f->write("synced");
  f->sync();
  f->write("-volatile");
  EXPECT_EQ(vfs.read("wal").value(), "synced-volatile");
  vfs.crash(0);  // nothing written back
  EXPECT_EQ(vfs.read("wal").value(), "synced");
  // Variant 1: everything made it.
  auto g = vfs.create("wal2", false);
  g->write("abc");
  vfs.crash(1);
  EXPECT_EQ(vfs.read("wal2").value(), "abc");
}

TEST(MemVfs, NamespaceOpsAreDurable) {
  MemVfs vfs;
  vfs.mkdirs("a/b");
  auto f = vfs.create("a/b/x", true);
  f->write("data");
  f->sync();
  vfs.rename("a/b/x", "a/b/y");
  vfs.crash(0);
  EXPECT_FALSE(vfs.exists("a/b/x"));
  EXPECT_EQ(vfs.read("a/b/y").value(), "data");
  EXPECT_TRUE(vfs.exists("a/b"));
}

TEST(MemVfs, CreateRequiresParentDirectory) {
  MemVfs vfs;
  EXPECT_THROW(vfs.create("no/such/dir/file", true), VfsError);
  vfs.mkdirs("no/such/dir");
  EXPECT_NO_THROW(vfs.create("no/such/dir/file", true));
  // Rename into a missing directory is also a protocol bug.
  EXPECT_THROW(vfs.rename("no/such/dir/file", "absent/file"), VfsError);
}

TEST(MemVfs, ListsSortedBasenames) {
  MemVfs vfs;
  vfs.mkdirs("d");
  vfs.create("d/b", true);
  vfs.create("d/a", true);
  vfs.mkdirs("d/sub");
  EXPECT_EQ(vfs.list("d"), (std::vector<std::string>{"a", "b", "sub"}));
  EXPECT_TRUE(vfs.list("absent").empty());
}

TEST(MemVfs, CrashVariantsAreDeterministic) {
  const auto build = [] {
    auto vfs = std::make_unique<MemVfs>();
    auto f = vfs->create("t", true);
    f->write("0123456789");  // all unsynced
    return vfs;
  };
  for (const std::uint64_t variant : {0ull, 2ull, 3ull, 4ull}) {
    auto a = build();
    auto b = build();
    a->crash(variant);
    b->crash(variant);
    EXPECT_EQ(a->read("t").value(), b->read("t").value())
        << "variant " << variant;
  }
}

TEST(MemVfs, TraceReplayReproducesState) {
  MemVfs vfs;
  vfs.set_record_trace(true);
  vfs.mkdirs("d");
  auto f = vfs.create("d/x", true);
  f->write("hello");
  f->sync();
  vfs.rename("d/x", "d/y");
  const auto trace = vfs.trace();
  ASSERT_GE(trace.size(), 5u);
  auto replayed = replay_prefix(trace, trace.size(), 0);
  EXPECT_EQ(replayed->read("d/y").value(), "hello");
  // A prefix that stops before the rename sees the old name.
  auto earlier = replay_prefix(trace, trace.size() - 1, 1);
  EXPECT_EQ(earlier->read("d/x").value(), "hello");
  EXPECT_FALSE(earlier->exists("d/y"));
}

TEST(MemVfs, StaleLockDetection) {
  MemVfs vfs;
  bool stale = false;
  {
    auto lock = vfs.try_lock("store.lock", &stale);
    ASSERT_NE(lock, nullptr);
    EXPECT_FALSE(stale);
    // Second acquisition while held fails (live holder).
    EXPECT_EQ(vfs.try_lock("store.lock", &stale), nullptr);
  }
  // Clean release: re-acquisition is not stale.
  auto lock2 = vfs.try_lock("store.lock", &stale);
  ASSERT_NE(lock2, nullptr);
  EXPECT_FALSE(stale);
  // A crash drops the flock but leaves the holder tag in the file.
  vfs.crash(0);
  auto lock3 = vfs.try_lock("store.lock", &stale);
  ASSERT_NE(lock3, nullptr);
  EXPECT_TRUE(stale);
}

TEST(AtomicWriteFile, PublishesWholeOrNotAtAll) {
  MemVfs vfs;
  vfs.set_record_trace(true);
  vfs.install_file("cfg", "old");
  atomic_write_file(vfs, "cfg", "new content");
  EXPECT_EQ(vfs.read("cfg").value(), "new content");
  // Replay every crash prefix: the file is always exactly old or new.
  const auto trace = vfs.trace();
  for (std::size_t k = 0; k <= trace.size(); ++k) {
    for (const std::uint64_t variant : {0ull, 1ull, 3ull}) {
      auto state = replay_prefix(trace, k, variant);
      // install_file bypasses the trace, so seed the old file first.
      if (!state->exists("cfg") || state->read("cfg")->empty()) {
        continue;  // prefix before installation is out of scope
      }
      const std::string got = state->read("cfg").value();
      EXPECT_TRUE(got == "old" || got == "new content")
          << "k=" << k << " variant=" << variant << " got '" << got << "'";
    }
  }
}

// --- PlanStore -------------------------------------------------------------

TEST(PlanStore, PutGetRoundTrip) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  const PlanRecord rec = sample_record();
  EXPECT_FALSE(store.get(rec.key).has_value());  // miss first
  ASSERT_TRUE(store.put(rec));
  const auto back = store.get(rec.key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config, rec.config);
  EXPECT_EQ(back->meta, rec.meta);
  EXPECT_EQ(store.keys(), std::vector<std::string>{rec.key});
  const auto stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanStore, OverwriteSameKeyLastWins) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  PlanRecord rec = sample_record();
  ASSERT_TRUE(store.put(rec));
  rec.tflops = 9.0;
  ASSERT_TRUE(store.put(rec));
  EXPECT_DOUBLE_EQ(store.get(rec.key)->tflops, 9.0);
  EXPECT_EQ(store.keys().size(), 1u);
}

TEST(PlanStore, CorruptRecordIsQuarantinedAndClassified) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  const PlanRecord rec = sample_record();
  ASSERT_TRUE(store.put(rec));
  // Corrupt the published object in place (bit rot).
  std::string bytes = vfs.read(store.object_path(rec.key)).value();
  bytes[bytes.size() - 2] ^= 0x01;
  vfs.install_file(store.object_path(rec.key), bytes);
  EXPECT_FALSE(store.get(rec.key).has_value());
  const auto stats = store.stats();
  EXPECT_EQ(stats.drop_crc_mismatch, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  // The bad record moved aside: a fresh get is a clean miss, and the
  // evidence is preserved under quarantine/.
  EXPECT_FALSE(vfs.exists(store.object_path(rec.key)));
  EXPECT_EQ(vfs.list("store/quarantine").size(), 1u);
  // The store still accepts a replacement.
  ASSERT_TRUE(store.put(rec));
  EXPECT_TRUE(store.get(rec.key).has_value());
}

TEST(PlanStore, TornRecordClassifiedSeparately) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  const PlanRecord rec = sample_record();
  ASSERT_TRUE(store.put(rec));
  const std::string bytes = vfs.read(store.object_path(rec.key)).value();
  vfs.install_file(store.object_path(rec.key),
                   bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(store.get(rec.key).has_value());
  EXPECT_EQ(store.stats().drop_torn, 1u);
  EXPECT_EQ(store.stats().drop_crc_mismatch, 0u);
}

TEST(PlanStore, OpenSweepsOrphanTemps) {
  MemVfs vfs;
  {
    PlanStore first(vfs, "store");
    // Simulate a crash mid-put: an orphan temp left behind.
    vfs.install_file("store/tmp/orphan.pid:1.0.tmp", "partial bytes");
  }
  PlanStore second(vfs, "store");
  EXPECT_EQ(second.stats().recovered_tmp, 1u);
  EXPECT_TRUE(vfs.list("store/tmp").empty());
}

// Two daemons starting on one store must not eat each other's in-flight
// put temps: the startup sweep (and compact) may only reclaim a temp
// whose owning process is provably dead. This was a real race — before
// liveness checking, daemon B's open() would delete live daemon A's
// temp, failing A's commit rename.
TEST(PlanStore, StartupSweepSparesLiveWritersTemps) {
  MemVfs vfs;
  vfs.set_process_tag("pid:a");
  PlanStore a(vfs, "store");
  // Daemon A is mid-put: its temp is written but not yet renamed.
  const std::string a_tmp =
      "store/tmp/" + sample_record().key + ".pid:a.0.tmp";
  vfs.install_file(a_tmp, "a's in-flight bytes");

  // Daemon B starts while A is alive: the temp must survive B's sweep.
  vfs.set_process_tag("pid:b");
  PlanStore b(vfs, "store");
  EXPECT_TRUE(vfs.exists(a_tmp));
  EXPECT_EQ(b.stats().recovered_tmp, 0u);
  // ... and survive B's compaction too.
  const auto report = b.compact();
  EXPECT_TRUE(report.ran);
  EXPECT_EQ(report.removed_tmp, 0);
  EXPECT_TRUE(vfs.exists(a_tmp));
  // Both daemons keep publishing normally around the in-flight temp.
  ASSERT_TRUE(b.put(sample_record()));
  EXPECT_TRUE(b.get(sample_record().key).has_value());

  // A dies mid-put; the next startup reclaims its orphan.
  vfs.mark_tag_dead("pid:a");
  vfs.set_process_tag("pid:c");
  PlanStore c(vfs, "store");
  EXPECT_FALSE(vfs.exists(a_tmp));
  EXPECT_EQ(c.stats().recovered_tmp, 1u);
}

TEST(PlanStore, SweepReclaimsUnattributableTemps) {
  MemVfs vfs;
  {
    PlanStore first(vfs, "store");
    // Files whose names carry no parseable owner tag belong to no live
    // process by construction; conservative liveness doesn't apply, and
    // tmp/ is store-private, so both get reclaimed.
    vfs.install_file("store/tmp/garbage-no-owner.tmp", "junk");
    vfs.install_file("store/tmp/not-even-a-temp", "junk");
  }
  PlanStore second(vfs, "store");
  EXPECT_EQ(second.stats().recovered_tmp, 2u);
  EXPECT_TRUE(vfs.list("store/tmp").empty());
}

TEST(MemVfs, TagLivenessFollowsProcessLifecycle) {
  MemVfs vfs;
  EXPECT_TRUE(vfs.tag_alive("pid:mem"));       // the default identity
  EXPECT_FALSE(vfs.tag_alive("pid:stranger"));  // never registered
  vfs.set_process_tag("pid:x");
  EXPECT_TRUE(vfs.tag_alive("pid:x"));
  EXPECT_TRUE(vfs.tag_alive("pid:mem"));  // older identities stay alive
  vfs.mark_tag_dead("pid:mem");
  EXPECT_FALSE(vfs.tag_alive("pid:mem"));
  // Machine death kills every simulated process; the post-reboot
  // process (the current tag) is alive again.
  vfs.set_process_tag("pid:y");
  vfs.crash(0);
  EXPECT_TRUE(vfs.tag_alive("pid:y"));
  EXPECT_FALSE(vfs.tag_alive("pid:x"));
}

TEST(MemVfs, DeadTagsHeldLocksAreReleased) {
  MemVfs vfs;
  vfs.set_process_tag("pid:locker");
  bool stale = false;
  auto held = vfs.try_lock("store.lock", &stale);
  ASSERT_NE(held, nullptr);
  vfs.set_process_tag("pid:survivor");
  // While the locker lives, the lock is contended.
  EXPECT_EQ(vfs.try_lock("store.lock", &stale), nullptr);
  vfs.mark_tag_dead("pid:locker");
  // The "kernel" released the dead process's flock; the lock-file bytes
  // it left behind prove the death, reported as a stale reclaim.
  stale = false;
  auto reclaimed = vfs.try_lock("store.lock", &stale);
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_TRUE(stale);
  held.reset();  // the dead holder's RAII guard must be a harmless no-op
}

TEST(PlanStore, CompactReclaimsStaleLockAndDrainsQuarantine) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  const PlanRecord rec = sample_record();
  ASSERT_TRUE(store.put(rec));
  // Plant a corrupt object and quarantine it via get().
  std::string bytes = vfs.read(store.object_path(rec.key)).value();
  bytes[bytes.size() - 2] ^= 0x01;
  vfs.install_file(store.object_path(rec.key), bytes);
  ASSERT_FALSE(store.get(rec.key).has_value());
  ASSERT_EQ(vfs.list("store/quarantine").size(), 1u);
  // A previous holder died while holding the lock.
  {
    bool stale = false;
    auto held = vfs.try_lock("store/store.lock", &stale);
    ASSERT_NE(held, nullptr);
    vfs.crash(1);  // drops the flock, keeps the tag bytes
  }
  const auto report = store.compact();
  EXPECT_TRUE(report.ran);
  EXPECT_TRUE(report.stale_lock_reclaimed);
  EXPECT_EQ(report.removed_quarantine, 1);
  EXPECT_TRUE(vfs.list("store/quarantine").empty());
  EXPECT_EQ(store.stats().stale_locks_reclaimed, 1u);
  EXPECT_EQ(store.stats().compactions, 1u);
}

TEST(PlanStore, CompactSkipsWhenLockIsHeldByLiveProcess) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  bool stale = false;
  auto held = vfs.try_lock("store/store.lock", &stale);
  ASSERT_NE(held, nullptr);
  const auto report = store.compact();
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(store.stats().compactions, 0u);
}

TEST(PlanStore, RejectsNonHexKeys) {
  MemVfs vfs;
  PlanStore store(vfs, "store");
  PlanRecord rec = sample_record();
  rec.key = "../../../etc/passwd";
  EXPECT_THROW(store.put(rec), Error);
}

// --- FaultVfs --------------------------------------------------------------

robust::FaultSpec fs_spec(const std::string& text) {
  return robust::parse_fault_spec(text);
}

TEST(FaultSpecGrammar, ParsesFsKeys) {
  const auto spec =
      fs_spec("fs.fail=0.25,fs.enospc=0.5,fs.short=0.75,fs.crash_at=12");
  EXPECT_DOUBLE_EQ(spec.fs_fail_p, 0.25);
  EXPECT_DOUBLE_EQ(spec.fs_enospc_p, 0.5);
  EXPECT_DOUBLE_EQ(spec.fs_short_p, 0.75);
  EXPECT_EQ(spec.fs_crash_at, 12);
  EXPECT_TRUE(spec.any_fs_faults());
  EXPECT_FALSE(spec.any_faults());  // fs keys do not arm eval faults
  EXPECT_THROW(fs_spec("fs.crash_at=-1"), Error);
  EXPECT_THROW(fs_spec("fs.crash_at=soon"), Error);
  EXPECT_THROW(fs_spec("fs.fail=2"), Error);
  EXPECT_THROW(fs_spec("fs.frobnicate=1"), Error);
}

TEST(FaultVfs, InjectedEioDegradesPutGracefully) {
  MemVfs mem;
  FaultVfs vfs(mem, fs_spec("fs.fail=1,seed=1"));
  PlanStore store(vfs, "store");  // mkdirs fail -> recovery list is empty
  EXPECT_FALSE(store.put(sample_record()));
  EXPECT_EQ(store.stats().put_failures, 1u);
  EXPECT_GT(vfs.counters().failures.load(), 0u);
  EXPECT_FALSE(store.get(sample_record().key).has_value());
}

TEST(FaultVfs, DecisionsAreDeterministic) {
  const auto run = [](std::uint64_t seed) {
    MemVfs mem;
    FaultVfs vfs(mem, [&] {
      auto s = fs_spec("fs.enospc=0.3,fs.short=0.2");
      s.seed = seed;
      return s;
    }());
    PlanStore store(vfs, "store");
    std::vector<bool> outcomes;
    for (int i = 0; i < 20; ++i) {
      PlanRecord rec = sample_record();
      rec.key[0] = "0123456789abcdef"[i % 16];
      outcomes.push_back(store.put(rec));
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));  // same seed => identical fault pattern
  EXPECT_NE(run(7), run(8));  // different seed => different pattern
}

TEST(FaultVfs, EnospcTearsButNeverPublishes) {
  MemVfs mem;
  FaultVfs vfs(mem, fs_spec("fs.enospc=1,seed=3"));
  PlanStore store(vfs, "store");
  const PlanRecord rec = sample_record();
  EXPECT_FALSE(store.put(rec));
  EXPECT_GT(vfs.counters().enospc.load(), 0u);
  // The torn bytes never reached the published path.
  EXPECT_FALSE(mem.exists(store.object_path(rec.key)));
  EXPECT_FALSE(store.get(rec.key).has_value());
}

TEST(FaultVfs, CrashAtKillsEverythingAfterK) {
  MemVfs mem;
  FaultVfs vfs(mem, fs_spec("fs.crash_at=2"));
  EXPECT_NO_THROW(vfs.mkdirs("a"));  // op 0
  EXPECT_NO_THROW(vfs.mkdirs("b"));  // op 1
  EXPECT_THROW(vfs.mkdirs("c"), FsCrash);  // op 2: dead
  EXPECT_TRUE(vfs.crashed());
  EXPECT_THROW(vfs.read("a"), FsCrash);  // reads die too
  EXPECT_THROW(vfs.exists("a"), FsCrash);
  vfs.reboot();
  EXPECT_FALSE(vfs.crashed());
  EXPECT_NO_THROW(vfs.exists("a"));
}

TEST(FaultVfs, ShortWriteLeavesPrefixThenFails) {
  MemVfs mem;
  FaultVfs vfs(mem, fs_spec("fs.short=1,seed=5"));
  vfs.mkdirs(".");  // no-op, counted
  auto f = vfs.create("x", true);
  EXPECT_THROW(f->write("0123456789abcdef"), VfsError);
  EXPECT_EQ(vfs.counters().short_writes.load(), 1u);
  const std::string left = mem.read("x").value();
  EXPECT_GT(left.size(), 0u);
  EXPECT_LT(left.size(), 16u);  // a strict prefix landed
}

}  // namespace
}  // namespace artemis::storage
