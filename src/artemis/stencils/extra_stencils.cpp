#include "artemis/stencils/extra_stencils.hpp"

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"

namespace artemis::stencils {

namespace {

std::string gen_heat1d(std::int64_t n, int t) {
  return str_cat(R"(parameter N=)", n, R"(;
iterator i;
double u[N], un[N], alpha;
copyin u, alpha;
stencil heat (UN, U, alpha) {
  UN[i] = U[i] + alpha*(U[i-1] - 2.0*U[i] + U[i+1]);
}
iterate )",
                 t, R"( {
  heat (un, u, alpha);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_jacobi2d(std::int64_t n, int t) {
  return str_cat("parameter M=", n, ", N=", n, R"(;
iterator j, i;
double u[M,N], un[M,N], c;
copyin u, c;
#pragma stream j block (64)
stencil jac (UN, U, c) {
  UN[j][i] = c*(U[j][i-1] + U[j][i+1] + U[j-1][i] + U[j+1][i] + U[j][i]);
}
iterate )",
                 t, R"( {
  jac (un, u, c);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_blur9(std::int64_t n, int t) {
  return str_cat("parameter M=", n, ", N=", n, R"(;
iterator j, i;
double u[M,N], un[M,N];
copyin u;
stencil blur (UN, U) {
  UN[j][i] = 0.111*(U[j-1][i-1] + U[j-1][i] + U[j-1][i+1]
    + U[j][i-1] + U[j][i] + U[j][i+1]
    + U[j+1][i-1] + U[j+1][i] + U[j+1][i+1]);
}
iterate )",
                 t, R"( {
  blur (un, u);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_wave2d(std::int64_t n, int t) {
  // Order-2 wave operator: needs two history levels; we model the
  // velocity-free form with a single ping-pong (structural stand-in).
  return str_cat("parameter M=", n, ", N=", n, R"(;
iterator j, i;
double u[M,N], un[M,N], c2;
copyin u, c2;
stencil wave (UN, U, c2) {
  UN[j][i] = 2.0*U[j][i] + c2*(
    1.333*(U[j][i-1] + U[j][i+1] + U[j-1][i] + U[j+1][i])
    - 0.083*(U[j][i-2] + U[j][i+2] + U[j-2][i] + U[j+2][i])
    - 5.0*U[j][i]);
}
iterate )",
                 t, R"( {
  wave (un, u, c2);
  swap (un, u);
}
copyout u;
)");
}

std::string gen_gradient2d(std::int64_t n, int /*t*/) {
  // Spatial two-stage DAG: smooth, then gradient magnitude (squared, to
  // stay within the restricted expression subset without sqrt).
  return str_cat("parameter M=", n, ", N=", n, R"(;
iterator j, i;
double img[M,N], sm[M,N], grad[M,N];
copyin img;
stencil smooth (SM, IMG) {
  SM[j][i] = 0.2*(IMG[j][i] + IMG[j][i-1] + IMG[j][i+1]
    + IMG[j-1][i] + IMG[j+1][i]);
}
stencil gradmag (G, SM) {
  double gx = 0.5*(SM[j][i+1] - SM[j][i-1]);
  double gy = 0.5*(SM[j+1][i] - SM[j-1][i]);
  G[j][i] = gx*gx + gy*gy;
}
smooth (sm, img);
gradmag (grad, sm);
copyout grad;
)");
}

std::vector<ExtraStencilSpec> make_specs() {
  std::vector<ExtraStencilSpec> out;
  auto add = [&](std::string name, int dims, std::int64_t domain, int t,
                 bool iterative, std::string desc,
                 std::function<std::string(std::int64_t, int)> gen) {
    ExtraStencilSpec s;
    s.name = std::move(name);
    s.dims = dims;
    s.domain = domain;
    s.time_steps = t;
    s.iterative = iterative;
    s.description = std::move(desc);
    s.generator = std::move(gen);
    out.push_back(std::move(s));
  };
  add("heat-1d", 1, 1 << 22, 16, true, "3-point explicit heat equation",
      gen_heat1d);
  add("jacobi-2d", 2, 4096, 8, true, "5-point 2D Jacobi smoother",
      gen_jacobi2d);
  add("blur9-2d", 2, 4096, 8, true, "9-point box blur", gen_blur9);
  add("wave-2d", 2, 4096, 8, true, "order-2 13-point wave operator",
      gen_wave2d);
  add("gradient-2d", 2, 4096, 1, false,
      "smooth + gradient-magnitude pipeline (2-stage DAG)", gen_gradient2d);
  return out;
}

}  // namespace

std::string ExtraStencilSpec::dsl(std::int64_t extent, int t) const {
  return generator(extent > 0 ? extent : domain,
                   t >= 0 ? t : time_steps);
}

const std::vector<ExtraStencilSpec>& extra_stencils() {
  static const std::vector<ExtraStencilSpec> specs = make_specs();
  return specs;
}

const ExtraStencilSpec& extra_stencil(const std::string& name) {
  for (const auto& s : extra_stencils()) {
    if (s.name == name) return s;
  }
  throw Error(str_cat("unknown extra stencil '", name, "'"));
}

ir::Program extra_stencil_program(const std::string& name,
                                  std::int64_t extent, int t) {
  return dsl::parse(extra_stencil(name).dsl(extent, t));
}

}  // namespace artemis::stencils
