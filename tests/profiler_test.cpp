#include <gtest/gtest.h>

#include <cmath>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/metrics/compare.hpp"
#include "artemis/metrics/metrics.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/transform/fusion.hpp"
#include "test_programs.hpp"

namespace artemis::profile {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::TilingScheme;

class ProfilerTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

TEST_F(ProfilerTest, BandwidthBoundJacobi) {
  // A single 7-point sweep is the canonical DRAM bandwidth-bound kernel
  // (Table II: OI_dram 0.97 << 6.42).
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto& call = prog.steps[0].body[0].call;
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto plan = codegen::build_plan_for_call(prog, call, cfg, dev_);
  const ProfileReport rep = profile_plan(plan, dev_, params_);
  EXPECT_TRUE(rep.bandwidth_bound_at(Level::Dram));
  EXPECT_FALSE(rep.compute_bound);
  EXPECT_LT(rep.oi_dram, 2.0);
  EXPECT_GT(rep.oi_dram, 0.3);
}

TEST_F(ProfilerTest, FusionRaisesOiDram) {
  // The Table II trend: OI_dram grows with fusion degree.
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  double prev = 0.0;
  for (int x = 1; x <= 4; ++x) {
    const auto tt = transform::time_tile_iterate(prog, prog.steps[0], x);
    KernelConfig cfg;
    cfg.tiling = TilingScheme::StreamSerial;
    cfg.stream_axis = 2;
    cfg.block = {16, 4, 1};  // small enough for the x=4 fused internals
    const auto plan =
        codegen::build_plan(tt.augmented, tt.stages, cfg, dev_);
    const ProfileReport rep = profile_plan(plan, dev_, params_);
    EXPECT_GT(rep.oi_dram, prev) << "x=" << x;
    prev = rep.oi_dram;
  }
  // Fusion must shift the bound towards shared memory: OI_shm stays flat
  // and low while OI_dram grows past it.
  EXPECT_GT(prev, 1.8);
}

TEST_F(ProfilerTest, ComputeBoundKernel) {
  // Huge arithmetic per point, one array: compute-bound at every level.
  const ir::Program prog = dsl::parse(R"(
    parameter L=128, M=128, N=128;
    iterator k, j, i;
    double a[L,M,N], o[L,M,N], c;
    copyin a, c;
    stencil s (O, A, c) {
      double t0 = A[k][j][i]*c + 0.5;
      double t1 = t0*t0 + t0*c + sqrt(t0*t0 + 1.0);
      double t2 = t1*t1 + t1*t0 + exp(t1*0.001);
      double t3 = t2*t2 + t2*t1 + t2*t0 + t2*c;
      double t4 = t3*t3 + t3*t2 + t3*t1 + t3*t0;
      double t5 = t4*t4 + t4*t3 + t4*t2 + t4*t1 + t4*t0;
      double t6 = t5*t5 + t5*t4 + t5*t3 + t5*t2 + t5*t1 + t5*t0;
      double t7 = t6*t6 + t6*t5 + t6*t4 + t6*t3 + t6*t2 + t6*t1;
      double t8 = t7*t7 + t7*t6 + t7*t5 + t7*t4 + t7*t3 + t7*t2 + t7*t1;
      double t9 = t8*t8 + t8*t7 + t8*t6 + t8*t5 + t8*t4 + t8*t3 + t8*t2;
      double ta = t9*t9 + t9*t8 + t9*t7 + t9*t6 + t9*t5 + t9*t4 + t9*t3;
      double tb = ta*ta + ta*t9 + ta*t8 + ta*t7 + ta*t6 + ta*t5 + ta*t4;
      O[k][j][i] = tb + ta + t9 + t8 + t7 + t6 + t5 + t4 + t3 + t2 + t1
        + t0;
    }
    s (o, a, c);
    copyout o;
  )");
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;
  KernelConfig cfg;
  cfg.block = {32, 4, 2};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_, opts);
  const ProfileReport rep = profile_plan(plan, dev_, params_);
  EXPECT_TRUE(rep.compute_bound);
  EXPECT_FALSE(rep.bandwidth_bound_anywhere());
  EXPECT_GT(rep.oi_dram, dev_.balance_dram());
}

TEST_F(ProfilerTest, CodeDifferencingResolvesNearRidge) {
  ProfileOptions opts;
  opts.bandwidth_margin = 1.0;  // force everything near-ridge into
  opts.compute_margin = 1.0;    // differencing territory
  opts.bandwidth_margin = 0.999;
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto& call = prog.steps[0].body[0].call;
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  const auto plan = codegen::build_plan_for_call(prog, call, cfg, dev_);
  // With margins collapsed, at least one verdict near the ridge is settled
  // by code differencing for some level on some version; validate the
  // mechanism directly instead:
  const ProfileReport rep = profile_plan(plan, dev_, params_, opts);
  EXPECT_TRUE(rep.dram == LevelVerdict::BandwidthBound ||
              rep.dram == LevelVerdict::ComputeBound);
}

TEST_F(ProfilerTest, RegisterPressureDetected) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 320);
  KernelConfig cfg;
  cfg.block = {16, 16, 1};
  cfg.max_registers = 255;
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;  // isolate registers from shmem capacity
  const auto plan = codegen::build_plan_for_call(prog, prog.steps[0].call,
                                                 cfg, dev_, opts);
  const ProfileReport rep = profile_plan(plan, dev_, params_);
  EXPECT_TRUE(rep.register_pressure);
  EXPECT_GT(rep.eval.regs.spilled(255), 0);
}

TEST_F(ProfilerTest, HintsComputeBound) {
  ProfileReport rep;
  rep.compute_bound = true;
  const auto h = derive_hints(rep, false, true);
  EXPECT_TRUE(h.disable_unroll);
  EXPECT_TRUE(h.disable_shmem_opts);
  EXPECT_TRUE(h.apply_flop_reduction);
  EXPECT_FALSE(h.text.empty());
}

TEST_F(ProfilerTest, HintsIterativeFusion) {
  ProfileReport rep;
  rep.dram = LevelVerdict::BandwidthBound;
  const auto h = derive_hints(rep, /*iterative=*/true, true);
  EXPECT_TRUE(h.try_higher_fusion);
}

TEST_F(ProfilerTest, HintsSpatialShmem) {
  ProfileReport rep;
  rep.tex = LevelVerdict::BandwidthBound;
  const auto h = derive_hints(rep, /*iterative=*/false, /*uses_shmem=*/false);
  EXPECT_TRUE(h.enable_shmem);
}

TEST_F(ProfilerTest, HintsPreferGlobalWhenDramBoundWithShmem) {
  ProfileReport rep;
  rep.dram = LevelVerdict::BandwidthBound;
  const auto h = derive_hints(rep, /*iterative=*/false, /*uses_shmem=*/true);
  EXPECT_TRUE(h.prefer_global_version);
}

TEST_F(ProfilerTest, HintsShmBoundEnablesRegisterOpts) {
  ProfileReport rep;
  rep.shm = LevelVerdict::BandwidthBound;
  const auto h = derive_hints(rep, false, true);
  EXPECT_TRUE(h.enable_register_opts);
}

TEST_F(ProfilerTest, HintsRegisterPressureTriggersFission) {
  ProfileReport rep;
  rep.register_pressure = true;
  const auto h = derive_hints(rep, false, true);
  EXPECT_TRUE(h.generate_fission_candidates);
  EXPECT_TRUE(h.disable_unroll);
}

TEST_F(ProfilerTest, HintsLatencyBoundWithRegisterPressure) {
  // A latency-bound kernel with spills: the pressure hints fire (fission
  // candidates, no unrolling) but none of the bandwidth-driven hints do --
  // latency-boundedness on its own carries no rewrite recipe.
  ProfileReport rep;
  rep.latency_bound = true;
  rep.register_pressure = true;
  rep.dram = LevelVerdict::Inconclusive;
  rep.tex = LevelVerdict::Inconclusive;
  const auto h = derive_hints(rep, /*iterative=*/true, /*uses_shmem=*/true);
  EXPECT_TRUE(h.generate_fission_candidates);
  EXPECT_TRUE(h.disable_unroll);
  EXPECT_FALSE(h.try_higher_fusion);
  EXPECT_FALSE(h.enable_shmem);
  EXPECT_FALSE(h.prefer_global_version);
  EXPECT_FALSE(h.enable_register_opts);
  EXPECT_FALSE(h.apply_flop_reduction);
  EXPECT_EQ(h.text.size(), 1u);
}

TEST_F(ProfilerTest, HintsNoTrafficAtAllLevelsYieldsNoHints) {
  // A default-constructed report (NoTraffic everywhere, no pressure, not
  // compute-bound) must produce no hints at all: derive_hints may never
  // invent advice when the profiler saw nothing actionable.
  ProfileReport rep;
  ASSERT_EQ(rep.dram, LevelVerdict::NoTraffic);
  ASSERT_EQ(rep.tex, LevelVerdict::NoTraffic);
  ASSERT_EQ(rep.shm, LevelVerdict::NoTraffic);
  ASSERT_FALSE(rep.bandwidth_bound_anywhere());
  for (const bool iterative : {false, true}) {
    for (const bool uses_shmem : {false, true}) {
      const auto h = derive_hints(rep, iterative, uses_shmem);
      EXPECT_FALSE(h.disable_unroll);
      EXPECT_FALSE(h.disable_shmem_opts);
      EXPECT_FALSE(h.apply_flop_reduction);
      EXPECT_FALSE(h.try_higher_fusion);
      EXPECT_FALSE(h.enable_shmem);
      EXPECT_FALSE(h.prefer_global_version);
      EXPECT_FALSE(h.enable_register_opts);
      EXPECT_FALSE(h.generate_fission_candidates);
      EXPECT_TRUE(h.text.empty());
    }
  }
}

TEST_F(ProfilerTest, SummaryMentionsVerdicts) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto& call = prog.steps[0].body[0].call;
  KernelConfig cfg;
  const auto plan = codegen::build_plan_for_call(prog, call, cfg, dev_);
  const auto rep = profile_plan(plan, dev_, params_);
  const std::string s = rep.summary();
  EXPECT_NE(s.find("OI(dram)"), std::string::npos);
  EXPECT_NE(s.find("OI(shm)"), std::string::npos);
}

TEST_F(ProfilerTest, MeasuredMetricsAgreeWithBandwidthVerdict) {
  // The observatory's measured side must reproduce the profiler's
  // qualitative verdict: a 7-point sweep is DRAM bandwidth-bound, so the
  // measured OI(dram) sits well below the device ridge point — and the
  // modeled OI, whatever its absolute divergence, lands on the same side.
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {8, 8, 4};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  const ProfileReport rep = profile_plan(plan, dev_, params_);
  EXPECT_TRUE(rep.bandwidth_bound_at(Level::Dram));

  sim::GridSet gs = sim::GridSet::from_program(prog, 1);
  const metrics::PlanMetrics m = metrics::measure_plan(plan, gs, dev_);
  const double ridge = dev_.peak_dp_flops / dev_.dram_bytes_per_s;
  EXPECT_GT(m.totals.oi_dram(), 0.0);
  EXPECT_LT(m.totals.oi_dram(), ridge);
  EXPECT_LT(rep.oi_dram, ridge);

  // Divergence between the modeled and measured counters is reported as
  // a bounded signed relative error.
  const auto predicted = gpumodel::evaluate(plan, dev_, params_).counters;
  const metrics::ModelVsMeasured d =
      metrics::compare_counters(predicted, m);
  EXPECT_LE(std::fabs(d.dram_bytes.rel_error()), 1.0);
  EXPECT_LE(std::fabs(d.flops.rel_error()), 1.0);
  // The measured-roofline ranking signal exists and is positive.
  EXPECT_GT(metrics::measured_roofline_s(m, dev_), 0.0);
}

}  // namespace
}  // namespace artemis::profile
