#pragma once

#include <string>

#include "artemis/codegen/plan.hpp"
#include "artemis/sim/bytecode.hpp"
#include "artemis/sim/gridset.hpp"

namespace artemis::sim {

/// Element-level counts gathered while executing a plan; used by tests to
/// cross-check the analytic performance model's traffic formulas.
struct ExecCounters {
  std::int64_t computed_points = 0;   ///< stencil applications incl. recompute
  std::int64_t skipped_points = 0;    ///< vetoed by the boundary guard
  std::int64_t global_read_elems = 0; ///< element reads from global arrays
  std::int64_t global_write_elems = 0;
  std::int64_t scratch_read_elems = 0;  ///< reads from fused internal buffers
  std::int64_t scratch_write_elems = 0;
  std::int64_t blocks = 0;
};

/// Which interpreter executes the plan's statement lists. All three
/// produce bit-identical grids, counters and hook traces (the native
/// engine in its default strict mode); the tree walk survives as the
/// differential-testing oracle.
enum class SimEngine {
  Bytecode,  ///< compiled slot-resolved bytecode (default, fast)
  TreeWalk,  ///< per-point recursive evaluation via apply_stmts_at_point
  Native,    ///< SIMD interior tier over bytecode (sim/native/), rim + any
             ///< refused stage fall back to the bytecode engine
};

/// Stable names for CLI flags, telemetry and reports: "bytecode",
/// "treewalk", "native".
const char* engine_name(SimEngine engine);

/// Parse an engine name ("tree" and "treewalk" both accept the oracle).
/// Throws artemis::Error on anything else.
SimEngine engine_by_name(const std::string& name);

/// Counting-mode output for one plan execution: per-stage interior/rim
/// counters and coalesced line streams, plus the flat address map that
/// ties line ids back to arrays. Per-block traces are reduced in block-id
/// order exactly like BcCounters, so the result is deterministic at any
/// job count. Filled by execute_plan when ExecOptions::trace points here;
/// gpumodel-free so sim stays a leaf module (metrics/ does cache replay).
struct PlanTrace {
  /// One array slot of the flat global address space, slot-ordered.
  /// elem_base is line-aligned and ranges are disjoint, so any line id in
  /// a stage stream maps back to exactly one array.
  struct ArrayInfo {
    std::string name;
    std::uint64_t elem_base = 0;  ///< byte base (line-aligned)
    std::int64_t elems = 0;       ///< storage elements (8 bytes each)
  };

  int line_bytes = static_cast<int>(kTraceLineBytes);
  std::vector<ArrayInfo> arrays;
  std::vector<StageTrace> stages;  ///< one per plan stage, merged
  /// Global commits of materialized internal arrays (scratch -> grid
  /// write-back after the stage sweeps); not attributable to one stage.
  StageTrace writeback;
};

/// Execution options. The global-access hook exists for trace-driven
/// cache validation (bench/cache_validation): it receives every
/// global-space element access (reads and committed writes) in a
/// deterministic single-threaded block order.
struct ExecOptions {
  /// Force single-threaded, block-id-ordered execution (implied by hook).
  bool serial = false;
  /// Worker count for the block sweep; 0 resolves to default_jobs().
  int jobs = 0;
  SimEngine engine = SimEngine::Bytecode;
  /// Native engine only: allow mul+add/sub fusion into correctly-rounded
  /// FMAs. Deterministic across dispatch tiers and job counts, but only
  /// ULP-bounded (not bit-identical) against the bytecode oracle; the
  /// default strict mode is bit-identical.
  bool native_fast_math = false;
  /// (array, z, y, x, is_write) for each global access.
  GlobalAccessHook global_hook;
  /// Counting mode: when non-null, per-stage measured counters and line
  /// streams are collected here. Requires the bytecode or native engine
  /// (identical output from both); composes with the parallel sweep
  /// (unlike the hook) and leaves grids, returned counters and journal
  /// bytes bit-identical to a plain run. Mutually exclusive with
  /// global_hook.
  PlanTrace* trace = nullptr;
};

/// Execute a kernel plan over real grids, faithfully reproducing the
/// generated code's block decomposition:
///
///  - the output domain is tiled exactly as the plan tiles it (spatial
///    tiles, serial streaming columns, or concurrent streaming chunks);
///  - fused stages compute over tiles expanded by their overlapped-tiling
///    expansion (plan.stage_expand), with internal arrays living in
///    zero-initialized block-local scratch (the shared-memory stand-in);
///  - external outputs commit only within the block's owned tile;
///  - a point is skipped when any read falls outside the domain (the CUDA
///    boundary guard), and arrays read-and-written with neighbor offsets
///    are snapshotted so all blocks observe pre-kernel values (see
///    needs_snapshot for the exact rule).
///
/// Each stage's statement list is compiled once into slot-resolved
/// bytecode (see bytecode.hpp) and blocks are swept in parallel over the
/// work-stealing TaskPool, with per-block counters reduced in block order
/// so the returned totals are deterministic at any job count.
///
/// Numerical results match run_stencil_reference exactly for identical
/// statement lists; geometry bugs (wrong halo, missing expansion) surface
/// as mismatches. Throws if an internal-array read escapes its scratch
/// region (a planner bug by construction).
ExecCounters execute_plan(const codegen::KernelPlan& plan, GridSet& gs,
                          const ExecOptions& opts = {});

}  // namespace artemis::sim
