// artemisd — the ARTEMIS tuning daemon.
//
// A long-lived tuning service on a unix-domain socket: clients submit
// stencil programs; the daemon compiles, tunes and answers from one
// shared ArtemisContext. Concurrent requests for the same program are
// deduplicated (one tuner evaluation, everyone gets byte-identical plan
// bytes), published plans are served straight from the content-addressed
// plan store, and every tune is journaled so a killed daemon resumes
// from its write-ahead log on restart. See docs/SERVICE.md.
//
//   artemisd --socket /tmp/artemis.sock --store plans/
//   artemisd --socket s.sock --store plans/ --journal-dir wal/
//   artemisd --socket s.sock --device v100 --strategy ppcg --jobs 4

#include <cstdio>
#include <cstring>
#include <string>

#include "artemis/common/parallel.hpp"
#include "artemis/service/socket_server.hpp"

using namespace artemis;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket <path>\n"
               "       [--store dir]          durable content-addressed "
               "plan store\n"
               "       [--journal-dir dir]    per-program tuning journals "
               "(resume after kill)\n"
               "       [--tuning-cache file]  persist/reuse tuned "
               "schedules\n"
               "       [--strategy artemis|ppcg|stencilgen|global|"
               "global-stream]\n"
               "       [--device k40|p100|v100|a100|h100]\n"
               "       [--jobs N]             tuning parallelism\n"
               "       [--model-prune-k N]    analytical pre-filter default "
               "for tunes\n"
               "                              (per-request override: "
               "'model_prune_k')\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, store_path, journal_dir, cache_path;
  std::string strategy_name = "artemis";
  std::string device_name = "p100";
  int jobs = 0;
  int model_prune_k = -1;  // < 0 = keep the strategy's default

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--journal-dir" && i + 1 < argc) {
      journal_dir = argv[++i];
    } else if (arg == "--tuning-cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (arg == "--device" && i + 1 < argc) {
      device_name = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        jobs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        jobs = -1;
      }
      if (jobs < 1) {
        std::fprintf(stderr, "artemisd: --jobs expects an integer >= 1\n");
        return 2;
      }
    } else if (arg == "--model-prune-k" && i + 1 < argc) {
      try {
        model_prune_k = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        model_prune_k = -1;
      }
      if (model_prune_k < 0) {
        std::fprintf(stderr,
                     "artemisd: --model-prune-k expects an integer >= 0\n");
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  try {
    set_default_jobs(jobs);
    service::ServiceOptions opts;
    opts.context.device = driver::device_by_name(device_name);
    opts.context.strategy = driver::strategy_by_name(strategy_name);
    if (model_prune_k >= 0) {
      opts.context.strategy.tune.model_prune_k = model_prune_k;
    }
    opts.context.jobs = jobs;
    opts.context.store_root = store_path;
    opts.context.cache_path = cache_path;
    opts.journal_dir = journal_dir;

    service::ArtemisService svc(opts);
    service::SocketServer server(svc, socket_path);
    std::printf("artemisd: listening on %s (device=%s, strategy=%s)\n",
                socket_path.c_str(), device_name.c_str(),
                strategy_name.c_str());
    std::fflush(stdout);
    server.serve();
    std::printf("artemisd: shutdown\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "artemisd: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
