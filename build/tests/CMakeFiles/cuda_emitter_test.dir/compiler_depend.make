# Empty compiler generated dependencies file for cuda_emitter_test.
# This may be replaced when dependencies are built.
