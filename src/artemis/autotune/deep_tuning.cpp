#include "artemis/autotune/deep_tuning.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <optional>

#include "artemis/common/check.hpp"
#include "artemis/common/parallel.hpp"

namespace artemis::autotune {

namespace {

/// Tune one fused-kernel version (time tile x). Pure with respect to the
/// deep-tune result: all bookkeeping happens in the caller's ordered
/// reduction, so the shards may run in any order on any thread.
DeepTuneEntry tune_one_tile(const ir::Program& prog,
                            const ir::Step& iterate_step,
                            const gpumodel::DeviceSpec& dev,
                            const gpumodel::ModelParams& params,
                            const DeepTuneOptions& opts, int x) {
  const transform::TimeTiledKernel tt =
      transform::time_tile_iterate(prog, iterate_step, x);

  // The factory captures the augmented program and stages by value so
  // each tuner evaluation rebuilds the plan for its config.
  const PlanFactory factory =
      [prog = tt.augmented,
       stages = tt.stages, &dev](const codegen::KernelConfig& cfg) {
        return codegen::build_plan(prog, stages, cfg, dev);
      };

  codegen::KernelConfig seed;
  seed.tiling = codegen::TilingScheme::StreamSerial;
  seed.stream_axis = static_cast<int>(prog.iterators.size()) - 1;
  seed.time_tile = x;

  DeepTuneEntry entry;
  entry.time_tile = x;
  entry.tuned = hierarchical_tune(factory, seed, dev, params, opts.tune);
  entry.time_s = entry.tuned.best.time_s;
  entry.tflops = entry.tuned.best.eval.tflops();
  entry.report =
      profile::profile_plan(factory(entry.tuned.best.config), dev, params);
  return entry;
}

}  // namespace

DeepTuneResult deep_tune(const ir::Program& prog,
                         const ir::Step& iterate_step,
                         const gpumodel::DeviceSpec& dev,
                         const gpumodel::ModelParams& params,
                         const DeepTuneOptions& opts) {
  DeepTuneResult result;
  bool past_cusp = false;
  const int jobs = resolve_tune_jobs(opts.tune);

  if (jobs > 1 && opts.max_time_tile > 1) {
    // Parallel path: tune every tile size 1..max_time_tile as a shard
    // (the inner searches drop to jobs=1 on pool workers), then replay
    // the serial stopping rule over the shards in x order. Versions past
    // the serial stopping point are tuned speculatively and discarded;
    // the returned entries, cusp handling, and tipping point are
    // identical to the serial loop. A shard's exception is rethrown only
    // if the serial loop would have reached that x.
    struct Shard {
      std::optional<DeepTuneEntry> entry;
      std::exception_ptr error;
    };
    std::vector<Shard> shards(static_cast<std::size_t>(opts.max_time_tile));
    TaskPool pool(std::min(jobs, opts.max_time_tile));
    pool.for_each(opts.max_time_tile, [&](std::int64_t i) {
      Shard& shard = shards[static_cast<std::size_t>(i)];
      try {
        shard.entry = tune_one_tile(prog, iterate_step, dev, params, opts,
                                    static_cast<int>(i) + 1);
      } catch (...) {
        shard.error = std::current_exception();
      }
    });
    for (auto& shard : shards) {
      if (shard.error) std::rethrow_exception(shard.error);
      const bool still_bandwidth_bound =
          shard.entry->report.bandwidth_bound_anywhere();
      result.entries.push_back(std::move(*shard.entry));
      if (!still_bandwidth_bound) {
        if (!opts.explore_past_cusp || past_cusp) break;
        past_cusp = true;
      }
    }
  } else {
    for (int x = 1; x <= opts.max_time_tile; ++x) {
      DeepTuneEntry entry =
          tune_one_tile(prog, iterate_step, dev, params, opts, x);
      const bool still_bandwidth_bound =
          entry.report.bandwidth_bound_anywhere();
      result.entries.push_back(std::move(entry));

      // Fusion only helps while some bandwidth roof is binding (Section
      // VI-A); stop after recording one post-cusp point for the plot.
      if (!still_bandwidth_bound) {
        if (!opts.explore_past_cusp || past_cusp) break;
        past_cusp = true;
      }
    }
  }

  // Tipping point: fastest per-step version.
  double best_per_step = std::numeric_limits<double>::infinity();
  for (const auto& e : result.entries) {
    const double per_step = e.time_s / e.time_tile;
    if (per_step < best_per_step) {
      best_per_step = per_step;
      result.tipping_point = e.time_tile;
    }
  }
  return result;
}

std::vector<int> fusion_schedule(const DeepTuneResult& result, int T) {
  ARTEMIS_CHECK(T >= 0);
  ARTEMIS_CHECK_MSG(!result.entries.empty(), "no deep-tuned versions");

  // f(x) by tile size.
  const int k = result.entries.back().time_tile;
  std::vector<double> f(static_cast<std::size_t>(k) + 1,
                        std::numeric_limits<double>::infinity());
  for (const auto& e : result.entries) {
    f[static_cast<std::size_t>(e.time_tile)] = e.time_s;
  }

  std::vector<double> opt(static_cast<std::size_t>(T) + 1,
                          std::numeric_limits<double>::infinity());
  std::vector<int> choice(static_cast<std::size_t>(T) + 1, 0);
  opt[0] = 0.0;
  for (int t = 1; t <= T; ++t) {
    for (int x = 1; x <= std::min(k, t); ++x) {
      if (!std::isfinite(f[static_cast<std::size_t>(x)])) continue;
      const double cand =
          f[static_cast<std::size_t>(x)] + opt[static_cast<std::size_t>(t - x)];
      if (cand < opt[static_cast<std::size_t>(t)]) {
        opt[static_cast<std::size_t>(t)] = cand;
        choice[static_cast<std::size_t>(t)] = x;
      }
    }
  }
  ARTEMIS_CHECK_MSG(T == 0 || std::isfinite(opt[static_cast<std::size_t>(T)]),
                    "no feasible fusion schedule for T=" << T);

  std::vector<int> schedule;
  for (int t = T; t > 0; t -= choice[static_cast<std::size_t>(t)]) {
    schedule.push_back(choice[static_cast<std::size_t>(t)]);
  }
  std::sort(schedule.rbegin(), schedule.rend());
  return schedule;
}

double schedule_time(const DeepTuneResult& result,
                     const std::vector<int>& schedule) {
  double total = 0;
  for (const int x : schedule) {
    bool found = false;
    for (const auto& e : result.entries) {
      if (e.time_tile == x) {
        total += e.time_s;
        found = true;
        break;
      }
    }
    ARTEMIS_CHECK_MSG(found, "schedule uses untuned tile size " << x);
  }
  return total;
}

}  // namespace artemis::autotune
