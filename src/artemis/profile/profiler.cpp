#include "artemis/profile/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "artemis/common/str.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::profile {

namespace {

/// Modelled execution time with one memory level's traffic "confined to a
/// single thread block" (Listing 3): the level's time component collapses
/// and the roofline is re-taken. This is the profiler's code-differencing
/// variant V' — if V' is much faster, V was bandwidth-bound at that level.
double time_without_level(const gpumodel::KernelEval& ev, Level level) {
  double t_dram = ev.t_dram, t_tex = ev.t_tex, t_shm = ev.t_shm;
  switch (level) {
    case Level::Dram: t_dram = 0; break;
    case Level::Tex: t_tex = 0; break;
    case Level::Shm: t_shm = 0; break;
  }
  const double t_mem = std::max({t_dram, t_tex, t_shm});
  // The overlap residual is already small; use full overlap for V'.
  return std::max(t_mem, ev.t_compute);
}

LevelVerdict classify(double oi, double balance, double margin_lo,
                      double margin_hi, bool has_traffic) {
  if (!has_traffic) return LevelVerdict::NoTraffic;
  if (oi < margin_lo * balance) return LevelVerdict::BandwidthBound;
  if (oi >= margin_hi * balance) return LevelVerdict::ComputeBound;
  return LevelVerdict::Inconclusive;
}

}  // namespace

const char* level_name(Level l) {
  switch (l) {
    case Level::Dram: return "dram";
    case Level::Tex: return "tex";
    case Level::Shm: return "shm";
  }
  return "?";
}

const char* level_verdict_name(LevelVerdict v) {
  switch (v) {
    case LevelVerdict::BandwidthBound: return "bandwidth-bound";
    case LevelVerdict::ComputeBound: return "compute-bound";
    case LevelVerdict::Inconclusive: return "inconclusive";
    case LevelVerdict::NoTraffic: return "no-traffic";
  }
  return "?";
}

ProfileReport profile_plan(const codegen::KernelPlan& plan,
                           const gpumodel::DeviceSpec& dev,
                           const gpumodel::ModelParams& params,
                           const ProfileOptions& opts) {
  const telemetry::Span span("profile.plan", "profile");
  robust::fault_point("profile.plan", plan.name);
  ProfileReport rep;
  rep.eval = gpumodel::evaluate(plan, dev, params);
  const auto& c = rep.eval.counters;

  rep.oi_dram = c.oi_dram();
  rep.oi_tex = c.oi_tex();
  rep.oi_shm = c.oi_shm();
  rep.balance_dram = dev.balance_dram();
  rep.balance_tex = dev.balance_tex();
  rep.balance_shm = dev.balance_shm();

  if (!rep.eval.valid) {
    rep.latency_bound = false;
    rep.register_pressure = true;
    return rep;
  }

  rep.dram = classify(rep.oi_dram, rep.balance_dram, opts.bandwidth_margin,
                      opts.compute_margin, c.dram_bytes() > 0);
  rep.tex = classify(rep.oi_tex, rep.balance_tex, opts.bandwidth_margin,
                     opts.compute_margin, c.tex_bytes > 0);
  rep.shm = classify(rep.oi_shm, rep.balance_shm, opts.bandwidth_margin,
                     opts.compute_margin, c.shm_bytes > 0);

  // Code differencing for near-ridge levels.
  auto difference = [&](Level level, LevelVerdict& verdict) {
    if (verdict != LevelVerdict::Inconclusive) return;
    const double t0 = rep.eval.time_s;
    const double t1 = time_without_level(rep.eval, level);
    verdict = (t0 - t1) / t0 > opts.differencing_threshold
                  ? LevelVerdict::BandwidthBound
                  : LevelVerdict::ComputeBound;
    rep.differenced.push_back(level);
  };
  difference(Level::Dram, rep.dram);
  difference(Level::Tex, rep.tex);
  difference(Level::Shm, rep.shm);

  rep.latency_bound = rep.eval.bound == gpumodel::Bound::Latency;
  rep.compute_bound =
      !rep.latency_bound &&
      rep.dram != LevelVerdict::BandwidthBound &&
      rep.tex != LevelVerdict::BandwidthBound &&
      rep.shm != LevelVerdict::BandwidthBound;

  const int spilled =
      rep.eval.regs.spilled(plan.config.max_registers);
  rep.register_pressure =
      spilled > 0 ||
      (rep.eval.occupancy.limiter ==
           gpumodel::Occupancy::Limiter::Registers &&
       rep.eval.occupancy.fraction <= 0.25);

  // One structured event per profiled kernel: the per-level OI/balance
  // pairs, the roofline verdicts, and whether code differencing (rather
  // than the plain thresholds) settled each verdict (Section IV).
  if (telemetry::enabled()) {
    const auto differenced_at = [&](Level l) {
      return std::find(rep.differenced.begin(), rep.differenced.end(), l) !=
             rep.differenced.end();
    };
    std::vector<telemetry::Attr> args;
    args.push_back({"kernel", Json(plan.name)});
    const struct {
      Level level;
      double oi, balance;
      LevelVerdict verdict;
    } rows[] = {{Level::Dram, rep.oi_dram, rep.balance_dram, rep.dram},
                {Level::Tex, rep.oi_tex, rep.balance_tex, rep.tex},
                {Level::Shm, rep.oi_shm, rep.balance_shm, rep.shm}};
    for (const auto& row : rows) {
      const std::string prefix = level_name(row.level);
      args.push_back({prefix + "_oi", Json(row.oi)});
      args.push_back({prefix + "_balance", Json(row.balance)});
      args.push_back({prefix + "_verdict", Json(level_verdict_name(row.verdict))});
      args.push_back({prefix + "_differenced", Json(differenced_at(row.level))});
    }
    args.push_back({"latency_bound", Json(rep.latency_bound)});
    args.push_back({"compute_bound", Json(rep.compute_bound)});
    args.push_back({"register_pressure", Json(rep.register_pressure)});
    args.push_back({"time_ms", Json(rep.eval.time_s * 1e3)});
    telemetry::instant("profile.verdict", "profile", std::move(args));
  }
  return rep;
}

std::string ProfileReport::summary() const {
  std::string s = str_cat(
      "OI(dram)=", format_double(oi_dram, 3), "/", format_double(balance_dram, 3),
      " [", level_verdict_name(dram), "]  OI(tex)=", format_double(oi_tex, 3),
      "/", format_double(balance_tex, 3), " [", level_verdict_name(tex),
      "]  OI(shm)=", format_double(oi_shm, 3), "/",
      format_double(balance_shm, 3), " [", level_verdict_name(shm), "]");
  if (latency_bound) s += "  latency-bound";
  if (compute_bound) s += "  compute-bound";
  if (register_pressure) s += "  register-pressure";
  return s;
}

OptimizationHints derive_hints(const ProfileReport& report, bool iterative,
                               bool uses_shmem) {
  OptimizationHints h;
  if (report.compute_bound) {
    // Shared-memory staging and ILP tricks cannot help a compute-bound
    // kernel; reduce FLOPs instead (folding, CSE).
    h.disable_shmem_opts = true;
    h.disable_unroll = true;
    h.apply_flop_reduction = true;
    h.text.push_back(
        "kernel is compute-bound: disabling shared-memory and unrolling "
        "optimizations; applying FLOP-reducing rewrites (folding)");
  }
  if (report.register_pressure) {
    h.disable_unroll = true;
    h.generate_fission_candidates = true;
    h.text.push_back(
        "high register pressure / spills detected: unrolling disabled, "
        "generating kernel fission candidates (trivial, recompute)");
  }
  if (iterative && (report.bandwidth_bound_at(Level::Tex) ||
                    report.bandwidth_bound_at(Level::Dram))) {
    h.try_higher_fusion = true;
    h.text.push_back(
        "iterative stencil is bandwidth-bound at texture/DRAM: exploring a "
        "higher fusion degree (time tiling)");
  }
  if (!iterative && report.bandwidth_bound_at(Level::Tex) && !uses_shmem) {
    h.enable_shmem = true;
    h.text.push_back(
        "spatial stencil is texture-cache bandwidth-bound: enabling "
        "shared-memory staging");
  }
  if (!iterative && uses_shmem && report.bandwidth_bound_at(Level::Dram)) {
    h.prefer_global_version = true;
    h.text.push_back(
        "spatial stencil remains DRAM bandwidth-bound despite shared "
        "memory: tuning the global-memory version; consider algorithmic "
        "reduction of DRAM traffic or stencil order");
  }
  if (report.bandwidth_bound_at(Level::Shm)) {
    h.enable_register_opts = true;
    h.text.push_back(
        "kernel is shared-memory bandwidth-bound: enabling register-level "
        "optimizations (retiming, register planes, blocked unrolling)");
  }
  return h;
}

}  // namespace artemis::profile
