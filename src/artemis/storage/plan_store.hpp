#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::storage {

/// On-disk record schema version. Bumped when the payload grammar changes
/// incompatibly; readers classify newer records as VersionSkew instead of
/// guessing.
constexpr int kPlanRecordVersion = 1;

/// One persisted tuning plan: the best kernel configuration found for a
/// (program, device, tuner-version) content key, with its measured
/// performance and free-form provenance metadata.
struct PlanRecord {
  std::string key;     ///< 32-hex content key (plan_store_key)
  std::string config;  ///< autotune::serialize_config line
  double time_s = 0;
  double tflops = 0;
  std::map<std::string, std::string> meta;  ///< provenance (device, ...)
};

/// Encode a record in the durable format:
///
///   #artemis-plan v1 len=<payload bytes> crc=<8 hex>\n
///   key=...\n config=...\n time_s=...\n tflops=...\n meta.<k>=<v>\n...
///
/// The header carries the exact payload length and its CRC-32, so a
/// reader can tell a torn tail (fewer bytes than promised) from
/// corruption (bytes present, checksum wrong) from a version it does not
/// speak. Records are only ever published whole via atomic rename.
std::string encode_plan_record(const PlanRecord& rec);

/// Why a decode rejected (or accepted) a byte string. The distinctions
/// drive separate telemetry counters: lots of Torn means crashes are
/// happening, CrcMismatch means the medium corrupts data, VersionSkew
/// means old and new binaries share a store.
enum class DecodeStatus {
  Ok,
  Torn,         ///< shorter than the header promises (torn write/crash)
  CrcMismatch,  ///< full length present but checksum fails
  VersionSkew,  ///< a schema version this reader does not speak
  Malformed,    ///< not a plan record at all / required fields missing
};

const char* decode_status_name(DecodeStatus s);

/// Classify `bytes` and, on Ok, parse into *out (out may be null to just
/// classify). Never throws.
DecodeStatus decode_plan_record(const std::string& bytes, PlanRecord* out);

/// The content key a plan is stored under: the structural hash of the
/// canonical IR (ir::hash_program — whitespace/formatting/comment
/// insensitive) extended with the device name and tuner version. Same
/// program text, same device, same tuner => same key, across platforms.
std::string plan_store_key(const ir::Program& prog,
                           const std::string& device,
                           int tuner_version);

/// Running counters of everything observable about one PlanStore. Mirrored
/// into telemetry under `plan_store.*` as they change.
struct PlanStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t put_failures = 0;    ///< put aborted by a VfsError
  std::uint64_t io_errors = 0;       ///< reads that threw (counted as miss)
  std::uint64_t recovered_tmp = 0;   ///< orphan temps swept at open()
  std::uint64_t quarantined = 0;     ///< bad records moved aside
  std::uint64_t drop_torn = 0;
  std::uint64_t drop_crc_mismatch = 0;
  std::uint64_t drop_version_skew = 0;
  std::uint64_t drop_malformed = 0;
  std::uint64_t stale_locks_reclaimed = 0;
  std::uint64_t compactions = 0;
};

/// Content-addressed durable store of tuning plans.
///
/// Layout under `root`:
///
///   store.lock                  maintenance lock (flock + holder tag)
///   tmp/                        in-flight writes (unique per process+seq)
///   quarantine/                 records that failed to decode, kept for
///                               post-mortem instead of deleted
///   objects/<hh>/<key>.plan     the records, sharded by the first two
///                               hex digits of the key
///
/// put() is write-to-temp, fsync, atomic-rename, fsync-parent: a crash at
/// any operation leaves either the old record, the new record, or an
/// orphan temp that open() sweeps — never a half-record at the published
/// path. put()/get() take no lock (rename is the commit point; concurrent
/// writers of the same key race benignly, last rename wins whole). Only
/// compact() takes the store lock.
///
/// VfsError is absorbed into counters (a broken disk degrades the store
/// to a pass-through, it never breaks tuning). FsCrash always propagates:
/// the simulated machine is dead.
class PlanStore {
 public:
  /// Binds the store to `root` under `vfs` and runs crash recovery:
  /// creates the directory skeleton and sweeps orphan temp files.
  PlanStore(Vfs& vfs, std::string root);

  /// Durably publish `rec` under rec.key. Returns false (and counts) if
  /// a filesystem error prevented it.
  bool put(const PlanRecord& rec);

  /// Fetch the record for `key`, verifying integrity. A record that fails
  /// verification is quarantined and reported as a miss.
  std::optional<PlanRecord> get(const std::string& key);

  /// All keys currently published (scans every shard).
  std::vector<std::string> keys();

  struct CompactionReport {
    bool ran = false;  ///< false = another live process holds the lock
    bool stale_lock_reclaimed = false;
    int removed_tmp = 0;      ///< leftover temps deleted
    int removed_quarantine = 0;
    int scanned = 0;          ///< published records verified
    int quarantined = 0;      ///< published records that failed the scan
  };

  /// Maintenance under the store lock: delete leftover temps, drain the
  /// quarantine, re-verify every published record (quarantining any that
  /// no longer decode). Skips (ran=false) when a live process holds the
  /// lock; reclaims and reports a stale lock from a dead one.
  CompactionReport compact();

  PlanStoreStats stats() const;

  const std::string& root() const { return root_; }
  std::string object_path(const std::string& key) const;
  static std::string shard_of(const std::string& key);

 private:
  /// Delete reclaimable temps under tmp/: those this process owns plus
  /// those whose owner Vfs::tag_alive rules dead. A live other process's
  /// in-flight temp is preserved (deleting it would fail that put's
  /// commit rename). Returns the number removed.
  int sweep_tmp();
  void quarantine_object(const std::string& key, DecodeStatus why);
  void count_drop(DecodeStatus why);

  Vfs& vfs_;
  std::string root_;
  mutable std::mutex mu_;  ///< guards stats_ and temp-name sequencing
  PlanStoreStats stats_;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace artemis::storage
