# Empty compiler generated dependencies file for model_consistency_test.
# This may be replaced when dependencies are built.
