#include "artemis/verify/shrink.hpp"

#include <algorithm>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/ir/expr.hpp"

namespace artemis::verify {

namespace {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;

/// All shrink variants of one expression tree: each node replaced by one
/// of its children, and each nonzero array-index offset zeroed. Bounded
/// by `budget` to keep the fan-out manageable on large trees.
void expr_variants(const ExprPtr& e, std::vector<ExprPtr>& out, int& budget) {
  if (budget <= 0) return;
  for (const auto& a : e->args) {
    if (budget-- <= 0) return;
    out.push_back(a);
  }
  if (e->kind == ExprKind::ArrayRef) {
    for (std::size_t d = 0; d < e->indices.size(); ++d) {
      if (e->indices[d].offset == 0) continue;
      if (budget-- <= 0) return;
      Expr c = *e;
      c.indices[d].offset = 0;
      out.push_back(std::make_shared<const Expr>(std::move(c)));
    }
  }
  for (std::size_t i = 0; i < e->args.size(); ++i) {
    std::vector<ExprPtr> sub;
    expr_variants(e->args[i], sub, budget);
    for (auto& v : sub) {
      Expr c = *e;
      c.args[i] = std::move(v);
      out.push_back(std::make_shared<const Expr>(std::move(c)));
    }
  }
}

void collect_called(const std::vector<ir::Step>& steps,
                    std::set<std::string>& called) {
  for (const auto& step : steps) {
    switch (step.kind) {
      case ir::Step::Kind::Call:
        called.insert(step.call.callee);
        break;
      case ir::Step::Kind::Iterate:
        collect_called(step.body, called);
        break;
      case ir::Step::Kind::Swap:
        break;
    }
  }
}

void collect_step_names(const std::vector<ir::Step>& steps,
                        std::set<std::string>& used) {
  for (const auto& step : steps) {
    switch (step.kind) {
      case ir::Step::Kind::Call:
        for (const auto& a : step.call.args) used.insert(a);
        break;
      case ir::Step::Kind::Swap:
        used.insert(step.swap.a);
        used.insert(step.swap.b);
        break;
      case ir::Step::Kind::Iterate:
        collect_step_names(step.body, used);
        break;
    }
  }
}

/// Drop stencil definitions no step calls any more, then array/scalar
/// declarations (and copyin/copyout entries) nothing references.
void prune_unused(ir::Program& p) {
  std::set<std::string> called;
  collect_called(p.steps, called);
  std::erase_if(p.stencils, [&](const ir::StencilDef& d) {
    return !called.count(d.name);
  });

  std::set<std::string> used;
  collect_step_names(p.steps, used);
  for (const auto& def : p.stencils) {
    for (const auto& st : def.stmts) {
      used.insert(st.lhs_name);
      ir::visit(*st.rhs, [&](const Expr& e) {
        if (e.kind == ExprKind::ScalarRef || e.kind == ExprKind::ArrayRef) {
          used.insert(e.name);
        }
      });
    }
  }
  std::erase_if(p.arrays,
                [&](const ir::ArrayDecl& a) { return !used.count(a.name); });
  std::erase_if(p.scalars,
                [&](const ir::ScalarDecl& s) { return !used.count(s.name); });
  const auto declared = [&](const std::string& n) {
    return p.find_array(n) != nullptr || p.find_scalar(n) != nullptr;
  };
  std::erase_if(p.copyin,
                [&](const std::string& n) { return !declared(n); });
  std::erase_if(p.copyout,
                [&](const std::string& n) { return !declared(n); });
}

bool has_pragma(const ir::PragmaInfo& p) {
  return p.stream_iter || !p.block.empty() || !p.unroll.empty() ||
         p.occupancy.has_value();
}

/// One round of shrink candidates, most aggressive first.
std::vector<ir::Program> candidates(const ir::Program& p,
                                    const ShrinkOptions& opts) {
  std::vector<ir::Program> out;

  // Drop one top-level step (and whatever becomes unused with it).
  for (std::size_t i = 0; i < p.steps.size(); ++i) {
    ir::Program q = p;
    q.steps.erase(q.steps.begin() + static_cast<std::ptrdiff_t>(i));
    prune_unused(q);
    out.push_back(std::move(q));
  }

  // Halve iterate trip counts.
  for (std::size_t i = 0; i < p.steps.size(); ++i) {
    if (p.steps[i].kind != ir::Step::Kind::Iterate) continue;
    if (p.steps[i].iterations <= 1) continue;
    ir::Program q = p;
    q.steps[i].iterations = std::max<std::int64_t>(1,
                                                   q.steps[i].iterations / 2);
    out.push_back(std::move(q));
  }

  // Drop one statement of one stencil.
  for (std::size_t s = 0; s < p.stencils.size(); ++s) {
    for (std::size_t j = 0; j < p.stencils[s].stmts.size(); ++j) {
      ir::Program q = p;
      auto& stmts = q.stencils[s].stmts;
      stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(j));
      out.push_back(std::move(q));
    }
  }

  // Halve one domain extent (floor 4 keeps boundary geometry meaningful).
  for (std::size_t i = 0; i < p.params.size(); ++i) {
    if (p.params[i].value <= 4) continue;
    ir::Program q = p;
    q.params[i].value = std::max<std::int64_t>(4, q.params[i].value / 2);
    out.push_back(std::move(q));
  }

  // Strip #pragma / #assign decoration.
  for (std::size_t s = 0; s < p.stencils.size(); ++s) {
    if (has_pragma(p.stencils[s].pragma)) {
      ir::Program q = p;
      q.stencils[s].pragma = {};
      out.push_back(std::move(q));
    }
    if (!p.stencils[s].resources.empty()) {
      ir::Program q = p;
      q.stencils[s].resources = {};
      out.push_back(std::move(q));
    }
  }

  // Simplify one statement's RHS.
  for (std::size_t s = 0; s < p.stencils.size(); ++s) {
    for (std::size_t j = 0; j < p.stencils[s].stmts.size(); ++j) {
      std::vector<ExprPtr> vars;
      int budget = opts.max_expr_variants;
      expr_variants(p.stencils[s].stmts[j].rhs, vars, budget);
      for (auto& v : vars) {
        ir::Program q = p;
        q.stencils[s].stmts[j].rhs = std::move(v);
        out.push_back(std::move(q));
      }
    }
  }

  return out;
}

}  // namespace

ir::Program shrink_program(const ir::Program& failing,
                           const StillFails& still_fails,
                           const ShrinkOptions& opts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  ir::Program cur = failing;
  bool improved = true;
  while (improved && st.checks < opts.max_checks) {
    improved = false;
    for (auto& cand : candidates(cur, opts)) {
      if (st.checks >= opts.max_checks) break;
      try {
        ir::validate(cand);
      } catch (const Error&) {
        continue;  // this reduction broke the program; try the next one
      }
      ++st.checks;
      if (still_fails(cand)) {
        cur = std::move(cand);
        ++st.rounds;
        improved = true;
        break;  // restart candidate enumeration from the smaller program
      }
    }
  }
  return cur;
}

}  // namespace artemis::verify
