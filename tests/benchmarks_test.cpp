#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/benchmarks.hpp"

namespace artemis::stencils {
namespace {

/// Merge the analysis of every call step (spatial DAGs) or the iterate
/// body (iterative stencils) the way Table I characterizes a benchmark.
struct Characteristics {
  int order = 0;
  std::int64_t flops = 0;
  std::set<std::string> arrays;
};

Characteristics characterize(const ir::Program& prog) {
  Characteristics ch;
  std::function<void(const std::vector<ir::Step>&)> walk =
      [&](const std::vector<ir::Step>& steps) {
        for (const auto& step : steps) {
          if (step.kind == ir::Step::Kind::Iterate) {
            walk(step.body);
            continue;
          }
          if (step.kind != ir::Step::Kind::Call) continue;
          const auto info = ir::analyze(prog, ir::bind_call(prog, step.call));
          ch.order = std::max(ch.order, info.order);
          ch.flops += info.flops_per_point;
          for (const auto& [name, ai] : info.arrays) ch.arrays.insert(name);
        }
      };
  walk(prog.steps);
  return ch;
}

class BenchmarkSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSuite, MatchesTableICharacteristics) {
  const BenchmarkSpec& spec = benchmark(GetParam());
  const ir::Program prog = benchmark_program(spec.name, 24);
  const Characteristics ch = characterize(prog);

  EXPECT_EQ(ch.order, spec.order) << "stencil order";
  EXPECT_EQ(static_cast<int>(ch.arrays.size()), spec.paper_arrays)
      << "IO array count";
  // FLOP counts of the synthesized kernels must track the paper's within
  // 20% (exact for the published smoothers is not required either: the
  // paper counts post-compilation FLOPs).
  const double rel =
      std::abs(static_cast<double>(ch.flops - spec.paper_flops)) /
      static_cast<double>(spec.paper_flops);
  EXPECT_LT(rel, 0.20) << "flops " << ch.flops << " vs paper "
                       << spec.paper_flops;
}

TEST_P(BenchmarkSuite, RoundTripsThroughPrinter) {
  const ir::Program prog = benchmark_program(GetParam(), 16);
  const std::string text = dsl::print_program(prog);
  const ir::Program reparsed = dsl::parse(text);
  EXPECT_EQ(dsl::print_program(reparsed), text);
}

TEST_P(BenchmarkSuite, ExecutesUnderDefaultPlan) {
  const BenchmarkSpec& spec = benchmark(GetParam());
  // Tiny domain, few iterations: executor vs reference.
  const ir::Program prog = benchmark_program(spec.name, 14, 2);
  const auto dev = gpumodel::p100();

  sim::GridSet ref = sim::GridSet::from_program(prog, 77);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);

  codegen::KernelConfig cfg;
  cfg.block = {4, 4, 2};
  // Semantics do not depend on residency; the global version avoids
  // shared-memory capacity rejections for the order-4 many-array kernels.
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      tiled.swap(step.swap.a, step.swap.b);
      continue;
    }
    const auto plan = codegen::build_plan(
        prog, {step.stencil}, cfg, dev, opts);
    sim::execute_plan(plan, tiled);
  }
  for (const auto& out : prog.copyout) {
    EXPECT_EQ(Grid3D::max_abs_diff(ref.grid(out), tiled.grid(out)), 0.0)
        << out;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableI, BenchmarkSuite,
    ::testing::Values("7pt-smoother", "27pt-smoother", "helmholtz",
                      "denoise", "miniflux", "hypterm", "diffterm",
                      "addsgd4", "addsgd6", "rhs4center", "rhs4sgcurv"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BenchmarkSuite, UnknownNameThrows) {
  EXPECT_THROW(benchmark("nope"), Error);
}

TEST(BenchmarkSuite, PaperDomainsAndTimeSteps) {
  EXPECT_EQ(benchmark("7pt-smoother").domain, 512);
  EXPECT_EQ(benchmark("7pt-smoother").time_steps, 12);
  EXPECT_TRUE(benchmark("denoise").iterative);
  EXPECT_EQ(benchmark("miniflux").domain, 320);
  EXPECT_FALSE(benchmark("rhs4sgcurv").iterative);
}

}  // namespace
}  // namespace artemis::stencils
